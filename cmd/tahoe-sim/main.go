// Command tahoe-sim runs the paper's experiments by name and renders
// their figures as ASCII plots, metric reports, and optional TSV files.
//
// Usage:
//
//	tahoe-sim -list
//	tahoe-sim -experiment fig4-5
//	tahoe-sim -experiment fig8-fixed -plot -width 120 -height 24
//	tahoe-sim -all -tsv out/
//	tahoe-sim -experiment fig6-7 -seed 7 -scale 0.5
//	tahoe-sim -config scenario.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tahoedyn"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments and exit")
		name   = flag.String("experiment", "", "experiment to run (see -list)")
		all    = flag.Bool("all", false, "run every experiment")
		config = flag.String("config", "", "run a JSON scenario file instead of a named experiment")
		seed   = flag.Int64("seed", 1, "scenario random seed")
		scale  = flag.Float64("scale", 1.0, "duration scale factor (1.0 = paper-length runs)")
		doPlot = flag.Bool("plot", true, "render ASCII plots of the figure traces")
		width  = flag.Int("width", 100, "plot width in characters")
		height = flag.Int("height", 18, "plot height in characters")
		tsvDir = flag.String("tsv", "", "directory to write per-experiment TSV trace files")
	)
	flag.Parse()

	if *list {
		for _, d := range tahoedyn.Experiments() {
			fmt.Printf("  %-20s %s\n", d.Name, d.Title)
		}
		return
	}

	if *config != "" {
		if err := runScenarioFile(*config, *width, *height, *doPlot); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
			os.Exit(1)
		}
		return
	}

	var names []string
	switch {
	case *all:
		for _, d := range tahoedyn.Experiments() {
			names = append(names, d.Name)
		}
	case *name != "":
		names = []string{*name}
	default:
		fmt.Fprintln(os.Stderr, "tahoe-sim: need -experiment <name>, -all, or -list")
		os.Exit(2)
	}

	opts := tahoedyn.ExpOptions{Seed: *seed, Scale: *scale}
	failed := false
	for _, n := range names {
		out, err := tahoedyn.Experiment(n, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
			os.Exit(2)
		}
		if err := out.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
			os.Exit(1)
		}
		if !out.Passed() {
			failed = true
		}
		if *doPlot && len(out.Series) > 0 && out.PlotTo > out.PlotFrom {
			err := tahoedyn.PlotASCII(os.Stdout, tahoedyn.PlotOptions{
				Width: *width, Height: *height,
				From: out.PlotFrom, To: out.PlotTo,
			}, out.Series...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tahoe-sim: plot:", err)
			}
		}
		if *tsvDir != "" && len(out.Series) > 0 && out.PlotTo > out.PlotFrom {
			if err := writeTSV(*tsvDir, n, out); err != nil {
				fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
				os.Exit(1)
			}
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// runScenarioFile executes an arbitrary JSON scenario and prints a
// generic dynamics report: utilizations, synchronization, drops, and the
// bottleneck queue plot.
func runScenarioFile(path string, width, height int, doPlot bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	cfg, err := tahoedyn.ParseScenario(f)
	f.Close()
	if err != nil {
		return err
	}
	res := tahoedyn.Run(cfg)
	cfg = res.Cfg // normalized copy, with defaults filled in
	fmt.Printf("scenario %s: %d switches, τ=%v, buffer %d, %d connections\n",
		path, cfg.Switches, cfg.TrunkDelay, cfg.Buffer, len(cfg.Conns))
	for i := range res.TrunkUtil {
		fmt.Printf("  trunk %d utilization: %.1f%% / %.1f%%\n",
			i, res.TrunkUtil[i][0]*100, res.TrunkUtil[i][1]*100)
	}
	if len(res.Cwnd) >= 2 {
		mode, r := tahoedyn.Phase(res.Cwnd[0], res.Cwnd[1], cfg.Warmup, cfg.Duration, time.Second)
		fmt.Printf("  window sync (conns 1,2): %v (r=%.2f)\n", mode, r)
	}
	qmode, qr := tahoedyn.Phase(res.Q1(), res.Q2(), cfg.Warmup, cfg.Duration, time.Second)
	fmt.Printf("  queue sync: %v (r=%.2f)\n", qmode, qr)
	epochs := tahoedyn.Epochs(res.Drops, 2*time.Second)
	fmt.Printf("  drops: %d in %d epochs; goodput %v\n", len(res.Drops), len(epochs), res.Goodput)
	if doPlot {
		from := cfg.Duration - 30*time.Second
		if from < cfg.Warmup {
			from = cfg.Warmup
		}
		return tahoedyn.PlotASCII(os.Stdout, tahoedyn.PlotOptions{
			Width: width, Height: height, From: from, To: cfg.Duration,
		}, res.Q1(), res.Q2())
	}
	return nil
}

func writeTSV(dir, name string, out *tahoedyn.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".tsv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	step := (out.PlotTo - out.PlotFrom) / 2000
	if step <= 0 {
		step = 10 * time.Millisecond
	}
	if err := tahoedyn.PlotTSV(f, out.PlotFrom, out.PlotTo, step, out.Series...); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return f.Close()
}
