// Command tahoe-sim runs the paper's experiments by name and renders
// their figures as ASCII plots, metric reports, and optional TSV files.
//
// Independent runs — every experiment under -all, and every seed under
// -seeds — fan across a worker pool (-parallel). Reports are rendered
// off-line per job and printed in job order, so the output is
// byte-identical for every worker count.
//
// Usage:
//
//	tahoe-sim -list
//	tahoe-sim -experiment fig4-5
//	tahoe-sim -experiment fig8-fixed -plot -width 120 -height 24
//	tahoe-sim -all -tsv out/ -parallel 8
//	tahoe-sim -experiment fig6-7 -seeds 1,2,3,4 -scale 0.5
//	tahoe-sim -config scenario.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tahoedyn"
	"tahoedyn/internal/prof"
)

func main() {
	os.Exit(run())
}

// stringList is a repeatable string flag: each occurrence appends.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, " ") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// run is main with an exit code: the profile flush is deferred here,
// which a direct os.Exit in the body would skip.
func run() int {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		name     = flag.String("experiment", "", "experiment to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		config   = flag.String("config", "", "run a JSON scenario file instead of a named experiment")
		seed     = flag.Int64("seed", 1, "scenario random seed")
		seedList = flag.String("seeds", "", "comma-separated seeds for multi-seed mode (overrides -seed)")
		scale    = flag.Float64("scale", 1.0, "duration scale factor (1.0 = paper-length runs)")
		parallel = flag.Int("parallel", 0, "worker count for independent runs (0 = GOMAXPROCS, 1 = serial)")
		doPlot   = flag.Bool("plot", true, "render ASCII plots of the figure traces")
		width    = flag.Int("width", 100, "plot width in characters")
		height   = flag.Int("height", 18, "plot height in characters")
		tsvDir   = flag.String("tsv", "", "directory to write per-experiment TSV trace files")
		validate = flag.Bool("validate", false, "with -config: parse, compile, and print the resolved scenario without running it")
		progress = flag.Duration("progress", 0, "print liveness to stderr every interval of simulated time (0 = off)")
		lenient  = flag.Bool("lenient", false, "with -config: ignore unknown JSON fields instead of rejecting them (warns on stderr)")
		schedFl  = flag.String("sched", "default", "event scheduler: wheel, heap, or default (A/B knob; never changes results)")
		shardsFl = flag.Int("shards", 0, "regions per run for sharded execution (0 = serial; A/B knob; never changes results)")
		storeFl  = flag.String("trace-store", "", "with -config: stream the run's event trace to this chunked store file (query it with tahoe-query)")
		invarFl  = flag.Bool("invariants", false, "verify streaming invariants (packet conservation, time monotonicity, cwnd bounds) online during every run")
		queueFl  = flag.String("queue", "", "with -config: override the queue discipline, e.g. drop-tail, fair-queue, red, red:min=5,max=15,p=0.02,wq=0.002")
		behavFl  = flag.String("behavior", "", "with -config: override the trunk link behavior, e.g. loss=0.01,jitter=2ms or ge=0.01/0.3/0.5 or trace=rates.rt")
		profFl   = prof.AddFlags(flag.String)
	)
	var eventFls stringList
	flag.Var(&eventFls, "event", "with -config: add a mid-run link event, e.g. link=1,t=120s,bw=25000 or link=1,t=120s,down (repeatable)")
	flag.Parse()

	// Experiments build their configs internally, so -sched and -shards
	// are applied as process-wide defaults rather than per Config; they
	// only ever change wall-clock, never results.
	sched, err := tahoedyn.ParseSched(*schedFl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
		return 2
	}
	tahoedyn.SetDefaultSched(sched)
	if *shardsFl < 0 {
		fmt.Fprintln(os.Stderr, "tahoe-sim: -shards must be >= 0")
		return 2
	}
	if *shardsFl > 0 {
		tahoedyn.SetDefaultShards(*shardsFl)
	}

	prog := progressObserver(*progress)

	if *validate && *config == "" {
		fmt.Fprintln(os.Stderr, "tahoe-sim: -validate requires -config <file>")
		return 2
	}
	var queueSpec *tahoedyn.QueueSpec
	if *queueFl != "" {
		if *config == "" {
			fmt.Fprintln(os.Stderr, "tahoe-sim: -queue requires -config <file>")
			return 2
		}
		if queueSpec, err = tahoedyn.ParseQueueSpec(*queueFl); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
			return 2
		}
	}
	var behavSpec *tahoedyn.BehaviorSpec
	if *behavFl != "" {
		if *config == "" {
			fmt.Fprintln(os.Stderr, "tahoe-sim: -behavior requires -config <file>")
			return 2
		}
		if behavSpec, err = tahoedyn.ParseBehaviorSpec(*behavFl); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
			return 2
		}
	}

	var events []tahoedyn.LinkEvent
	if len(eventFls) > 0 {
		if *config == "" {
			fmt.Fprintln(os.Stderr, "tahoe-sim: -event requires -config <file>")
			return 2
		}
		for _, s := range eventFls {
			ev, err := tahoedyn.ParseLinkEvent(s)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
				return 2
			}
			events = append(events, ev)
		}
	}

	stopProf, err := prof.Start(profFl.Config())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
		}
	}()

	if *list {
		for _, d := range tahoedyn.Experiments() {
			fmt.Printf("  %-20s %s\n", d.Name, d.Title)
		}
		return 0
	}

	if *config != "" {
		if *validate {
			if err := validateScenarioFile(os.Stdout, *config, *lenient); err != nil {
				fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
				return 1
			}
			return 0
		}
		if err := runScenarioFile(*config, *width, *height, *doPlot, *lenient, prog, *storeFl, *invarFl, queueSpec, behavSpec, events); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
			return 1
		}
		return 0
	}
	if *lenient {
		fmt.Fprintln(os.Stderr, "tahoe-sim: -lenient requires -config <file>")
		return 2
	}
	if *storeFl != "" {
		fmt.Fprintln(os.Stderr, "tahoe-sim: -trace-store requires -config <file>")
		return 2
	}

	var names []string
	switch {
	case *all:
		for _, d := range tahoedyn.Experiments() {
			names = append(names, d.Name)
		}
	case *name != "":
		names = []string{*name}
	default:
		fmt.Fprintln(os.Stderr, "tahoe-sim: need -experiment <name>, -all, or -list")
		return 2
	}

	seeds, err := parseSeeds(*seedList, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
		return 2
	}

	jobs := buildJobs(names, seeds, *scale, *parallel, prog, *invarFl)
	rendered, outs, err := renderJobs(jobs, renderOptions{
		Parallel: *parallel, Plot: *doPlot, Width: *width, Height: *height,
		SeedHeaders: len(seeds) > 1,
		// -all with a single seed is exactly the experiment registry in
		// order: route it through experiment.RunAll.
		UseRunAll: *all && len(seeds) == 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
		return 2
	}

	failed := false
	for i, buf := range rendered {
		os.Stdout.Write(buf.Bytes())
		out := outs[i]
		if !out.Passed() {
			failed = true
		}
		if *tsvDir != "" && len(out.Series) > 0 && out.PlotTo > out.PlotFrom {
			if err := writeTSV(*tsvDir, jobs[i].tsvName(), out); err != nil {
				fmt.Fprintln(os.Stderr, "tahoe-sim:", err)
				return 1
			}
		}
		fmt.Println()
	}
	if failed {
		return 1
	}
	return 0
}

// job is one (experiment, seed) cell of the run grid.
type job struct {
	name      string
	opts      tahoedyn.ExpOptions
	multiSeed bool
}

// tsvName returns the TSV file stem: the experiment name, qualified by
// the seed in multi-seed mode so files do not clobber each other.
func (j job) tsvName() string {
	if j.multiSeed {
		return fmt.Sprintf("%s-seed%d", j.name, j.opts.Seed)
	}
	return j.name
}

// buildJobs expands names × seeds into the job grid, seeds innermost so
// one experiment's seeds print together. parallel is forwarded into each
// experiment's options so experiments with internal sweeps (mode-boundary,
// oneway-buffers) fan their own runs too.
func buildJobs(names []string, seeds []int64, scale float64, parallel int, prog *tahoedyn.Progress, invariants bool) []job {
	multi := len(seeds) > 1
	var jobs []job
	for _, n := range names {
		for _, s := range seeds {
			jobs = append(jobs, job{
				name: n,
				opts: tahoedyn.ExpOptions{
					Seed: s, Scale: scale, Parallel: expWorkers(parallel),
					Observer: prog, Invariants: invariants,
				},
				multiSeed: multi,
			})
		}
	}
	return jobs
}

// progressObserver builds the -progress stderr reporter. The callback
// runs inside simulations that may execute on several workers at once,
// so it prints one self-contained line per sample and nothing else.
func progressObserver(every time.Duration) *tahoedyn.Progress {
	if every <= 0 {
		return nil
	}
	return &tahoedyn.Progress{Every: every, Fn: func(s tahoedyn.ProgressSnapshot) {
		fmt.Fprintf(os.Stderr, "tahoe-sim: t=%v/%v (%3.0f%%) events=%d\n",
			s.Now.Round(time.Millisecond), s.End, s.Frac()*100, s.Events)
	}}
}

// expWorkers maps the CLI -parallel convention (0 = GOMAXPROCS) onto the
// experiment.Options one (0 = serial, negative = GOMAXPROCS).
func expWorkers(parallel int) int {
	if parallel == 0 {
		return -1
	}
	return parallel
}

type renderOptions struct {
	Parallel      int
	Plot          bool
	Width, Height int
	SeedHeaders   bool
	UseRunAll     bool
}

// renderJobs validates the experiment names, fans the jobs across the
// worker pool, and renders each report into its own buffer. Buffers come
// back in job order, so printing them sequentially is deterministic for
// any worker count.
func renderJobs(jobs []job, ro renderOptions) ([]*bytes.Buffer, []*tahoedyn.Outcome, error) {
	// Validate names up front: a bad -experiment must fail before any
	// worker burns minutes of simulation.
	known := make(map[string]bool)
	for _, d := range tahoedyn.Experiments() {
		known[d.Name] = true
	}
	for _, j := range jobs {
		if !known[j.name] {
			return nil, nil, fmt.Errorf("unknown experiment %q", j.name)
		}
	}

	outs := make([]*tahoedyn.Outcome, len(jobs))
	if ro.UseRunAll && len(jobs) > 0 {
		copy(outs, tahoedyn.RunAllExperiments(jobs[0].opts))
	} else {
		tahoedyn.ParallelDo(ro.Parallel, len(jobs), func(i int) {
			outs[i] = tahoedyn.MustExperiment(jobs[i].name, jobs[i].opts)
		})
	}

	rendered := make([]*bytes.Buffer, len(jobs))
	for i, out := range outs {
		buf := &bytes.Buffer{}
		if ro.SeedHeaders {
			fmt.Fprintf(buf, "== seed %d ==\n", jobs[i].opts.Seed)
		}
		if err := out.WriteText(buf); err != nil {
			return nil, nil, err
		}
		if ro.Plot && len(out.Series) > 0 && out.PlotTo > out.PlotFrom {
			err := tahoedyn.PlotASCII(buf, tahoedyn.PlotOptions{
				Width: ro.Width, Height: ro.Height,
				From: out.PlotFrom, To: out.PlotTo,
			}, out.Series...)
			if err != nil {
				fmt.Fprintln(buf, "tahoe-sim: plot:", err)
			}
		}
		rendered[i] = buf
	}
	return rendered, outs, nil
}

// parseSeeds returns the multi-seed list, or the single fallback seed.
func parseSeeds(list string, fallback int64) ([]int64, error) {
	if list == "" {
		return []int64{fallback}, nil
	}
	var out []int64
	for _, part := range strings.Split(list, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// loadScenario parses a scenario file, strictly by default. With
// lenient, unknown JSON fields are warned about on stderr and ignored
// — the escape hatch for files written by newer or foreign tools.
func loadScenario(path string, lenient bool) (tahoedyn.Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return tahoedyn.Config{}, err
	}
	defer f.Close()
	if !lenient {
		return tahoedyn.ParseScenario(f)
	}
	cfg, unknown, err := tahoedyn.ParseScenarioLenient(f)
	for _, p := range unknown {
		fmt.Fprintf(os.Stderr, "tahoe-sim: %s: ignoring unknown field %q\n", path, p)
	}
	return cfg, err
}

// runScenarioFile executes an arbitrary JSON scenario and prints a
// generic dynamics report: utilizations, synchronization, drops, and the
// bottleneck queue plot. With storePath, the run's full event trace
// streams to a chunked store file; with invariants, the streaming
// checker runs online and a violation fails the command naming the
// offending event.
func runScenarioFile(path string, width, height int, doPlot, lenient bool, prog *tahoedyn.Progress, storePath string, invariants bool, queue *tahoedyn.QueueSpec, behavior *tahoedyn.BehaviorSpec, events []tahoedyn.LinkEvent) error {
	cfg, err := loadScenario(path, lenient)
	if err != nil {
		return err
	}
	// Flag events append after the file's own, so both apply (events
	// sort by time at build anyway).
	cfg.Events = append(cfg.Events, events...)
	if queue != nil {
		// The flag replaces whatever the file chose, including the
		// deprecated discard/discipline sugar.
		cfg.Queue = queue
		cfg.Discard, cfg.Discipline = tahoedyn.DropTailDiscard, tahoedyn.FIFODiscipline
	}
	if behavior != nil {
		cfg.Behavior = behavior
	}
	obsOpts := tahoedyn.ObsOptions{Progress: prog}
	var storeW *tahoedyn.TraceStoreWriter
	var storeF *os.File
	if storePath != "" {
		storeF, err = os.Create(storePath)
		if err != nil {
			return err
		}
		defer storeF.Close()
		storeW = tahoedyn.NewTraceStoreSink(storeF, tahoedyn.TraceStoreOptions{})
		obsOpts.Trace = &tahoedyn.TraceOptions{Sink: storeW}
	}
	if prog != nil || storeW != nil {
		cfg.Obs = &obsOpts
	}
	if invariants {
		cfg.Invariants = &tahoedyn.InvariantOptions{}
	}
	res, err := tahoedyn.RunE(cfg)
	if err != nil {
		return err
	}
	cfg = res.Cfg // normalized copy, with defaults filled in
	fmt.Printf("scenario %s: %d switches, τ=%v, buffer %d, %d connections\n",
		path, cfg.Switches, cfg.TrunkDelay, cfg.Buffer, len(cfg.Conns))
	if res.Invariant != nil {
		return res.Invariant
	}
	if invariants {
		fmt.Println("  invariants: clean")
	}
	if storeW != nil {
		if res.TraceErr != nil {
			return fmt.Errorf("trace store: %w", res.TraceErr)
		}
		if err := storeF.Close(); err != nil {
			return err
		}
		fmt.Printf("  trace store: %d events -> %s\n", storeW.TotalEvents(), storePath)
	}
	for i := range res.TrunkUtil {
		fmt.Printf("  trunk %d utilization: %.1f%% / %.1f%%\n",
			i, res.TrunkUtil[i][0]*100, res.TrunkUtil[i][1]*100)
	}
	if len(res.Cwnd) >= 2 {
		mode, r := tahoedyn.Phase(res.Cwnd[0], res.Cwnd[1], cfg.Warmup, cfg.Duration, time.Second)
		fmt.Printf("  window sync (conns 1,2): %v (r=%.2f)\n", mode, r)
	}
	qmode, qr := tahoedyn.Phase(res.Q1(), res.Q2(), cfg.Warmup, cfg.Duration, time.Second)
	fmt.Printf("  queue sync: %v (r=%.2f)\n", qmode, qr)
	epochs := tahoedyn.Epochs(res.Drops, 2*time.Second)
	fmt.Printf("  drops: %d in %d epochs; goodput %v\n", len(res.Drops), len(epochs), res.Goodput)
	if doPlot {
		from := cfg.Duration - 30*time.Second
		if from < cfg.Warmup {
			from = cfg.Warmup
		}
		return tahoedyn.PlotASCII(os.Stdout, tahoedyn.PlotOptions{
			Width: width, Height: height, From: from, To: cfg.Duration,
		}, res.Q1(), res.Q2())
	}
	return nil
}

// validateScenarioFile parses and compiles a scenario without running
// it, printing the resolved configuration: per-link parameters after
// defaulting, host placement, forwarding tables, and connections. A
// scenario that prints cleanly here is guaranteed to build.
func validateScenarioFile(w io.Writer, path string, lenient bool) error {
	cfg, err := loadScenario(path, lenient)
	if err != nil {
		return err
	}
	topo, err := tahoedyn.CompileTopology(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: valid\n", path)
	fmt.Fprintf(w, "  switches: %d  hosts: %d  links: %d  connections: %d\n",
		topo.Switches, topo.NumHosts(), len(topo.Links), len(cfg.Conns))
	fmt.Fprintf(w, "  seed %d, warmup %v, duration %v\n", cfg.Seed, cfg.Warmup, cfg.Duration)
	if cfg.Queue != nil {
		fmt.Fprintf(w, "  queue: %+v\n", *cfg.Queue)
	}
	if !cfg.Behavior.IsZero() {
		fmt.Fprintf(w, "  behavior: %+v\n", *cfg.Behavior)
	}
	for i, s := range cfg.Conns {
		if s.Source != nil && s.Source.Kind != "" && s.Source.Kind != tahoedyn.SourceTCP {
			fmt.Fprintf(w, "  conn %d source: %+v\n", i+1, *s.Source)
		}
	}
	for i, l := range topo.Links {
		buffer := fmt.Sprintf("%d pkts", l.Buffer)
		if l.Buffer <= 0 {
			buffer = "unbounded"
		}
		fmt.Fprintf(w, "  link %d: sw%d <-> sw%d  %d bit/s, delay %v, buffer %s\n",
			i, l.A, l.B, l.Bandwidth, l.Delay, buffer)
	}
	for h := 0; h < topo.NumHosts(); h++ {
		fmt.Fprintf(w, "  host %d on sw%d\n", h, topo.HostSwitch(h))
	}
	for s := 0; s < topo.Switches; s++ {
		fmt.Fprintf(w, "  sw%d routes:", s)
		for h := 0; h < topo.NumHosts(); h++ {
			hop, local := topo.NextHop(s, h)
			if local {
				fmt.Fprintf(w, "  h%d:local", h)
				continue
			}
			next := topo.Links[hop.Link].B
			if hop.Dir == 1 {
				next = topo.Links[hop.Link].A
			}
			fmt.Fprintf(w, "  h%d:link%d->sw%d", h, hop.Link, next)
		}
		fmt.Fprintln(w)
	}
	for i, c := range cfg.Conns {
		hops := topo.PathHops(c.SrcHost, c.DstHost)
		fmt.Fprintf(w, "  conn %d: h%d -> h%d (%d trunk hops)\n", i+1, c.SrcHost, c.DstHost, hops)
	}
	return nil
}

func writeTSV(dir, name string, out *tahoedyn.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".tsv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	step := (out.PlotTo - out.PlotFrom) / 2000
	if step <= 0 {
		step = 10 * time.Millisecond
	}
	if err := tahoedyn.PlotTSV(f, out.PlotFrom, out.PlotTo, step, out.Series...); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return f.Close()
}
