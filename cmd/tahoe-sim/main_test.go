package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tahoedyn"
)

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("", 7)
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("fallback: got %v, %v", got, err)
	}
	got, err = parseSeeds("1, 2,3", 7)
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("list: got %v, %v", got, err)
	}
	if _, err := parseSeeds("1,x", 7); err == nil {
		t.Fatal("no error for bad seed")
	}
}

// Multi-seed output must be byte-identical whether the jobs ran serially
// or across 8 workers.
func TestRenderJobsByteIdenticalAcrossWorkerCounts(t *testing.T) {
	jobs := buildJobs([]string{"oneway-smallpipe"}, []int64{1, 2, 3}, 0.1, 1, nil, false)
	render := func(workers int) []byte {
		rendered, outs, err := renderJobs(jobs, renderOptions{
			Parallel: workers, Plot: true, Width: 60, Height: 8, SeedHeaders: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != len(jobs) {
			t.Fatalf("got %d outcomes, want %d", len(outs), len(jobs))
		}
		var all bytes.Buffer
		for _, buf := range rendered {
			all.Write(buf.Bytes())
		}
		return all.Bytes()
	}
	serial, parallel := render(1), render(8)
	if len(serial) == 0 {
		t.Fatal("no output rendered")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatal("rendered output differs between 1 and 8 workers")
	}
	if !bytes.Contains(serial, []byte("== seed 2 ==")) {
		t.Fatal("multi-seed output missing seed header")
	}
}

func TestRenderJobsRejectsUnknownExperiment(t *testing.T) {
	jobs := buildJobs([]string{"no-such-experiment"}, []int64{1}, 0.1, 1, nil, false)
	if _, _, err := renderJobs(jobs, renderOptions{Parallel: 1}); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestWriteTSVCreatesFile(t *testing.T) {
	dir := t.TempDir()
	out := tahoedyn.MustExperiment("oneway-smallpipe", tahoedyn.ExpOptions{Scale: 0.1})
	if err := writeTSV(dir, "smoke", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "smoke.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 100 {
		t.Fatalf("TSV has only %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_seconds\t") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestValidateScenarioFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pl.json")
	js := `{"trunk_delay":"10ms","buffer":20,
	        "topology":{"generator":"parking-lot","size":3},
	        "conns":[{"src":0,"dst":3},{"src":1,"dst":2}]}`
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := validateScenarioFile(&buf, path, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"valid",
		"switches: 4  hosts: 4  links: 3",
		"link 0: sw0 <-> sw1  50000 bit/s, delay 10ms, buffer 20 pkts",
		"h3:link0->sw1",
		"conn 1: h0 -> h3 (3 trunk hops)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("validate output missing %q:\n%s", want, out)
		}
	}
	// A broken scenario must error without running anything.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"trunk_delay":"10ms","buffer":20,
	    "topology":{"switches":3,"links":[{"a":0,"b":1}]},
	    "conns":[{"src":0,"dst":1}]}`), 0o644)
	if err := validateScenarioFile(&buf, bad, false); err == nil {
		t.Fatal("disconnected topology did not error")
	}
}

// Every shipped scenario must validate.
func TestValidateShippedScenarios(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no shipped scenarios found: %v", err)
	}
	for _, p := range files {
		var buf bytes.Buffer
		if err := validateScenarioFile(&buf, p, false); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestRunScenarioFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	js := `{"trunk_delay":"10ms","buffer":20,
	        "conns":[{"src":0,"dst":1},{"src":1,"dst":0}],
	        "warmup":"20s","duration":"80s"}`
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScenarioFile(path, 60, 8, false, false, nil, "", false, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := runScenarioFile(filepath.Join(dir, "missing.json"), 60, 8, false, false, nil, "", false, nil, nil, nil); err == nil {
		t.Fatal("no error for missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{}`), 0o644)
	if err := runScenarioFile(bad, 60, 8, false, false, nil, "", false, nil, nil, nil); err == nil {
		t.Fatal("no error for invalid scenario")
	}
}
