package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tahoedyn"
)

func TestWriteTSVCreatesFile(t *testing.T) {
	dir := t.TempDir()
	out := tahoedyn.MustExperiment("oneway-smallpipe", tahoedyn.ExpOptions{Scale: 0.1})
	if err := writeTSV(dir, "smoke", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "smoke.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 100 {
		t.Fatalf("TSV has only %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_seconds\t") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunScenarioFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	js := `{"trunk_delay":"10ms","buffer":20,
	        "conns":[{"src":0,"dst":1},{"src":1,"dst":0}],
	        "warmup":"20s","duration":"80s"}`
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScenarioFile(path, 60, 8, false); err != nil {
		t.Fatal(err)
	}
	if err := runScenarioFile(filepath.Join(dir, "missing.json"), 60, 8, false); err == nil {
		t.Fatal("no error for missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{}`), 0o644)
	if err := runScenarioFile(bad, 60, 8, false); err == nil {
		t.Fatal("no error for invalid scenario")
	}
}
