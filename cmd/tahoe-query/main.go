// Command tahoe-query runs streaming queries over stored simulation
// traces: the chunked columnar store files written by
// `tahoe-sim -trace-store` (or any TraceStoreWriter), plus — for
// convenience — flat binary (TOBS) and JSONL traces. Store files are
// scanned one chunk at a time with index-driven chunk skipping, so a
// hundred-gigabyte trace queries in bounded memory; flat traces are
// loaded whole.
//
// One operation per invocation, over one trace file:
//
//	tahoe-query run.tobc                         # summary (default: -info)
//	tahoe-query -count -filter type=drop run.tobc
//	tahoe-query -events -limit 20 -from 30s -to 31s run.tobc
//	tahoe-query -window 1s -by-loc -filter type=transmit run.tobc
//	tahoe-query -quantiles 0.5,0.9,0.99 -filter type=drop run.tobc
//	tahoe-query -check run.tobc                  # offline invariant pass
//
// The -from/-to/-filter/-loc selectors compose with every operation.
// -count prints a bare number (script-friendly); -check exits 1 when
// an invariant is violated, naming the offending event.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tahoedyn"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		info      = flag.Bool("info", false, "print a store summary: events, chunks, time span, locations (the default operation)")
		count     = flag.Bool("count", false, "print the number of matching events (index-accelerated on store files)")
		events    = flag.Bool("events", false, "print matching events, one per line")
		limit     = flag.Int("limit", 0, "with -events: stop after this many events (0 = all)")
		window    = flag.Duration("window", 0, "aggregate matching events into windows of this width (per-window count, bytes, throughput, val stats)")
		byLoc     = flag.Bool("by-loc", false, "with -window: one series per location instead of one overall")
		quantiles = flag.String("quantiles", "", "comma-separated probabilities, e.g. 0.5,0.9,0.99: print quantiles of the events' val field")
		check     = flag.Bool("check", false, "run the offline invariant pass (conservation, causality, monotonic time, cwnd bounds)")
		noConsv   = flag.Bool("no-conservation", false, "with -check: skip conservation/causality (required for filtered or windowed captures)")
		from      = flag.Duration("from", 0, "select events at or after this simulated time")
		to        = flag.Duration("to", 0, "select events before this simulated time (0 = end)")
		filter    = flag.String("filter", "", `event filter, e.g. "conn=2,type=drop|timeout"`)
		loc       = flag.String("loc", "", `select a single location by name, e.g. "sw0->sw1:data"`)
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "tahoe-query: need exactly one trace file (see -h)")
		return 2
	}
	path := flag.Arg(0)

	flt, err := tahoedyn.ParseTraceFilter(*filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-query:", err)
		return 2
	}
	q := tahoedyn.TraceQuery{From: *from, To: *to, Filter: flt, Loc: *loc}

	sc, store, closeFn, err := openTrace(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-query:", err)
		return 1
	}
	defer closeFn()

	nOps := 0
	for _, on := range []bool{*info, *count, *events, *window != 0, *quantiles != "", *check} {
		if on {
			nOps++
		}
	}
	if nOps > 1 {
		fmt.Fprintln(os.Stderr, "tahoe-query: pick one operation (-info, -count, -events, -window, -quantiles, or -check)")
		return 2
	}

	switch {
	case *count:
		n, err := tahoedyn.CountTraceEvents(sc, q)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-query:", err)
			return 1
		}
		fmt.Println(n)
	case *events:
		if err := printEvents(sc, q, *limit); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-query:", err)
			return 1
		}
	case *window != 0:
		if err := printWindows(sc, q, *window, *byLoc); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-query:", err)
			return 1
		}
	case *quantiles != "":
		if err := printQuantiles(sc, q, *quantiles); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-query:", err)
			return 1
		}
	case *check:
		o := tahoedyn.InvariantOptions{NoConservation: *noConsv}
		n, vio, err := tahoedyn.CheckTraceInvariants(sc, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-query:", err)
			return 1
		}
		if vio != nil {
			fmt.Fprintln(os.Stderr, "tahoe-query:", vio)
			return 1
		}
		fmt.Printf("invariants: clean (%d events checked)\n", n)
	default:
		printInfo(sc, store, path)
	}
	return 0
}

// openTrace opens a trace file as a Scanner, autodetecting the format:
// a chunked store ("TOBC", queried out-of-core), a flat binary trace
// ("TOBS", loaded whole), or JSONL (loaded whole).
func openTrace(path string) (tahoedyn.TraceScanner, *tahoedyn.TraceStore, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	switch string(magic[:]) {
	case "TOBC":
		f.Close()
		s, err := tahoedyn.OpenTraceStore(path)
		if err != nil {
			return nil, nil, nil, err
		}
		return s, s, func() { s.Close() }, nil
	case "TOBS":
		defer f.Close()
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, nil, nil, err
		}
		locs, evs, err := tahoedyn.DecodeBinaryTrace(f)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return &tahoedyn.TraceSlice{LocTable: locs, Events: evs}, nil, func() {}, nil
	default:
		defer f.Close()
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, nil, nil, err
		}
		locs, evs, err := tahoedyn.DecodeJSONLTrace(f)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s: not a TOBC store, TOBS trace, or JSONL trace: %w", path, err)
		}
		return &tahoedyn.TraceSlice{LocTable: locs, Events: evs}, nil, func() {}, nil
	}
}

func printInfo(sc tahoedyn.TraceScanner, store *tahoedyn.TraceStore, path string) {
	if store != nil {
		chunks := store.Chunks()
		fmt.Printf("%s: chunked trace store, %d events in %d chunks\n",
			path, store.TotalEvents(), len(chunks))
		if len(chunks) > 0 {
			var bytes int64
			for i := range chunks {
				bytes += chunks[i].Size
			}
			fmt.Printf("  span %v .. %v\n", chunks[0].MinT, chunks[len(chunks)-1].MaxT)
			fmt.Printf("  %d payload bytes (%.1f B/event)\n",
				bytes, float64(bytes)/float64(store.TotalEvents()))
		}
		fmt.Printf("  %d locations\n", len(store.Locs()))
		return
	}
	src := sc.(*tahoedyn.TraceSlice)
	fmt.Printf("%s: flat trace, %d events, %d locations\n", path, len(src.Events), len(src.LocTable))
	if n := len(src.Events); n > 0 {
		fmt.Printf("  span %v .. %v\n", src.Events[0].T, src.Events[n-1].T)
	}
}

func printEvents(sc tahoedyn.TraceScanner, q tahoedyn.TraceQuery, limit int) error {
	locs := sc.Locs()
	n := 0
	return sc.Scan(q, func(ev *tahoedyn.TraceEvent) error {
		locName := fmt.Sprintf("loc%d", ev.Loc)
		if int(ev.Loc) < len(locs) {
			locName = locs[ev.Loc]
		}
		fmt.Printf("%-16v %-8v %-16s conn=%-3d kind=%v seq=%-7d size=%-5d id=%-8d val=%g\n",
			ev.T, ev.Type, locName, ev.Conn, ev.Kind, ev.Seq, ev.Size, ev.ID, ev.Val)
		n++
		if limit > 0 && n >= limit {
			return tahoedyn.ErrStopScan
		}
		return nil
	})
}

func printWindows(sc tahoedyn.TraceScanner, q tahoedyn.TraceQuery, width time.Duration, byLoc bool) error {
	groups, err := tahoedyn.WindowedTrace(sc, q, tahoedyn.WindowOptions{Width: width, ByLoc: byLoc})
	if err != nil {
		return err
	}
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-16s %-14s %-9s %-11s %-12s %-9s %-7s %-7s\n",
		"loc", "window", "count", "bytes", "bits/s", "val-mean", "min", "max")
	for _, name := range names {
		label := name
		if label == "" {
			label = "(all)"
		}
		for _, w := range groups[name] {
			if w.Count == 0 {
				continue
			}
			bps := float64(w.Bytes*8) / width.Seconds()
			fmt.Printf("%-16s %-14v %-9d %-11d %-12.0f %-9.2f %-7g %-7g\n",
				label, w.Start, w.Count, w.Bytes, bps, w.Mean(), w.Min, w.Max)
		}
	}
	return nil
}

func printQuantiles(sc tahoedyn.TraceScanner, q tahoedyn.TraceQuery, spec string) error {
	var probs []float64
	for _, part := range strings.Split(spec, ",") {
		p, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad probability %q", part)
		}
		probs = append(probs, p)
	}
	vals, n, err := tahoedyn.TraceQuantiles(sc, q, probs)
	if err != nil {
		return err
	}
	for i, p := range probs {
		fmt.Printf("p%g = %g\n", p*100, vals[i])
	}
	fmt.Printf("samples = %d\n", n)
	return nil
}
