module tahoedyn

go 1.22
