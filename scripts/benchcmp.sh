#!/bin/sh
# benchcmp.sh OLD.json NEW.json — compare two benchmark recordings made
# with `go test -bench . -json` (e.g. docs/BENCH_baseline.json and
# docs/BENCH_prN.json).
#
# The comparison has two severities:
#
#   hard  Paper metrics — util-*, bands-passed, events/run — are
#         deterministic outputs of the simulation, so any difference
#         means the physics changed: exit 1. allocs/op on the
#         steady-state benchmark (BenchmarkScenarioSteadyStateAllocs)
#         is also hard: the obs-disabled hot path is contractually
#         allocation-free, so any increase there is a real leak, not
#         noise.
#   soft  allocs/op regressions elsewhere beyond 25% (plus slack for
#         one-shot noise) are warned about but do not fail, and B/op
#         growth beyond 25% (plus a page of slack) likewise warns —
#         allocated-bytes creep is how a "compressed" data structure
#         quietly decompresses itself; ns/op is reported
#         informationally only — except on the route-compile
#         benchmarks, see below.
#
# Route-state gates (the 10⁶-node regime): route compilation is the
# build-time bottleneck at large switch counts, so ns/op on the
# BenchmarkTopologyBuild legs is gated like sim-events/s — losing 3x
# against the recording fails hard (that is an algorithmic regression,
# e.g. the interval-run compiler falling back to dense), losing 30%
# warns. route-bytes/switch — the resident forwarding-state metric the
# column-interning work drove to single digits — soft-gates at 25%
# growth plus 8 bytes of slack: interning quietly degrading (hash
# collisions, refcount leaks re-interning rows) shows up here first.
#
# sim-events/s sits between the two: recordings are single-iteration
# (-benchtime 1x, best of 3 samples) and the reference recordings come
# from shared single-core VMs, where host steal moves individual
# benchmarks by 2-3x between sessions. An algorithmic regression in the
# scheduler (a heap gone quadratic, a wheel cursor crawling empty slots)
# costs 3x or more, so the hard gate fires when a benchmark loses more
# than two thirds of its recorded throughput; losing more than 30%
# warns.
#
# Shard-scaling entries (any /shards=N sub-benchmark, e.g.
# BenchmarkShardScaling or the scale benchmarks' sharded legs) are
# exempt from the sim-events/s hard gate: the speedup of a parallel run depends on
# the recording host's core count (the reference recordings come from
# single-core VMs, where extra shards only add synchronization cost), so
# their throughput deltas are reported softly. Their events/run stays
# hard — sharding may never change the physics.
#
# A recording that contains no benchmark rows, or none carrying the
# sim-events/s metric, fails up front with a clear message instead of
# silently passing: it usually means the file is not a `go test -bench
# -json` recording at all, or predates the throughput metric.
#
# Benchmarks present in only one recording are listed but never fail the
# gate, so adding a benchmark does not require regenerating history.
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.json NEW.json" >&2
    exit 2
fi
old=$1
new=$2
for f in "$old" "$new"; do
    if [ ! -r "$f" ]; then
        echo "benchcmp: cannot read $f" >&2
        exit 2
    fi
done

exec awk -v oldfile="$old" -v newfile="$new" '
# Reassemble the benchmark text from the JSON event stream: every
# "Output" payload is concatenated in order (a single benchmark row can
# be split across several events), then unescaped and split into lines.
function slurp(file,   line, idx, payload, text) {
    text = ""
    while ((getline line < file) > 0) {
        idx = index(line, "\"Output\":\"")
        if (idx == 0) continue
        payload = substr(line, idx + 10)
        sub(/"}[[:space:]]*$/, "", payload)
        text = text payload
    }
    close(file)
    # go test -json escapes tabs, newlines, and quotes; benchmark rows
    # contain nothing else that needs unescaping.
    gsub(/\\t/, "\t", text)
    gsub(/\\"/, "\"", text)
    gsub(/\\u003c/, "<", text); gsub(/\\u003e/, ">", text); gsub(/\\u0026/, "\\&", text)
    gsub(/\\n/, "\n", text)
    return text
}

# parse() records every "value unit" pair of every benchmark row into
# val[tag, name, unit] and seen[tag, name]. GOMAXPROCS suffixes (-8) are
# stripped so recordings from different machines compare. Recordings are
# made with -count 3, so a benchmark appears several times per file:
# wall-clock-sensitive units keep their best sample (max throughput, min
# cost) — a loaded box cannot make a healthy scheduler look collapsed —
# while deterministic paper metrics are identical across samples and
# simply keep the last.
function parse(tag, text,   lines, n, i, f, nf, name, j, pair, np, p, u, v) {
    n = split(text, lines, "\n")
    for (i = 1; i <= n; i++) {
        if (lines[i] !~ /^Benchmark/ || lines[i] !~ /ns\/op/) continue
        nf = split(lines[i], f, "\t")
        name = f[1]
        gsub(/[[:space:]]+$/, "", name)
        sub(/-[0-9]+$/, "", name)
        seen[tag, name] = 1
        names[name] = 1
        rows[tag]++
        for (j = 3; j <= nf; j++) {
            np = split(f[j], p, /[[:space:]]+/)
            if (np < 2) continue
            # p[] may lead with an empty field from leading spaces.
            pair = (p[1] == "") ? 2 : 1
            if (pair + 1 > np) continue
            v = p[pair]
            u = p[pair + 1]
            if (u == "sim-events/s") {
                simkeys[tag]++
                if (!((tag, name, u) in val) || v + 0 > val[tag, name, u] + 0)
                    val[tag, name, u] = v
            } else if (u == "ns/op" || u == "B/op" || u == "allocs/op") {
                if (!((tag, name, u) in val) || v + 0 < val[tag, name, u] + 0)
                    val[tag, name, u] = v
            } else {
                val[tag, name, u] = v
            }
            units[name, u] = 1
        }
    }
}

function ishard(unit) {
    # NB: no backslash before the slash — "events\/run" is an undefined
    # string escape that mawk keeps verbatim, which silently disabled
    # this gate.
    return unit ~ /^util-/ || unit == "bands-passed" || unit == "events/run"
}

BEGIN {
    parse("old", slurp(oldfile))
    parse("new", slurp(newfile))

    # Refuse rather than vacuously pass when a recording has nothing to
    # compare: no benchmark rows at all, or rows without the
    # sim-events/s metric the throughput gate needs.
    file["old"] = oldfile; file["new"] = newfile
    for (tag in file) {
        if (!(tag in rows)) {
            printf "benchcmp: %s contains no benchmark rows — is it a `go test -bench -json` recording?\n", file[tag]
            exit 2
        }
        if (!(tag in simkeys)) {
            printf "benchcmp: %s has no sim-events/s entries — re-record it (make bench-record) so the throughput gate has data\n", file[tag]
            exit 2
        }
    }

    hardfail = 0
    softwarn = 0
    for (name in names) {
        if (!(("old", name) in seen)) { onlynew = onlynew "  " name "\n"; continue }
        if (!(("new", name) in seen)) { onlyold = onlyold "  " name "\n"; continue }
        for (key in units) {
            split(key, k, SUBSEP)
            if (k[1] != name) continue
            unit = k[2]
            has_old = (("old", name, unit) in val)
            has_new = (("new", name, unit) in val)
            if (!has_old || !has_new) continue
            ov = val["old", name, unit]
            nv = val["new", name, unit]
            if (ishard(unit)) {
                if (ov != nv) {
                    printf "FAIL %s %s: %s -> %s (paper metric drifted)\n", name, unit, ov, nv
                    hardfail = 1
                }
            } else if (unit == "allocs/op") {
                if (name ~ /SteadyStateAllocs/) {
                    # The zero-overhead contract: the obs-disabled
                    # steady-state path may never start allocating.
                    if (nv + 0 > ov + 0) {
                        printf "FAIL %s allocs/op: %s -> %s (steady-state path must stay allocation-free)\n", name, ov, nv
                        hardfail = 1
                    }
                } else if (nv + 0 > (ov + 0) * 1.25 + 16) {
                    printf "warn %s allocs/op: %s -> %s (regression)\n", name, ov, nv
                    softwarn = 1
                }
            } else if (unit == "B/op") {
                if (nv + 0 > (ov + 0) * 1.25 + 4096) {
                    printf "warn %s B/op: %s -> %s (allocated-bytes growth)\n", name, ov, nv
                    softwarn = 1
                }
            } else if (unit == "route-bytes/switch") {
                # Column interning quietly degrading shows up here first.
                if (nv + 0 > (ov + 0) * 1.25 + 8) {
                    printf "warn %s route-bytes/switch: %s -> %s (route-state growth)\n", name, ov, nv
                    softwarn = 1
                }
            } else if (unit == "ns/op" && name ~ /TopologyBuild/ && ov + 0 > 0) {
                # Route-compile time: hard gate with the same 3x noise
                # allowance as sim-events/s — shared single-core VMs move
                # wall clock 2-3x, an algorithmic fallback costs more.
                delta = (nv - ov) / ov * 100
                if (nv + 0 > (ov + 0) * 3) {
                    printf "FAIL %s ns/op: %s -> %s (%+.1f%%, route compile collapsed)\n", name, ov, nv, delta
                    hardfail = 1
                } else if (nv + 0 > (ov + 0) * 1.3) {
                    printf "warn %s ns/op: %s -> %s (%+.1f%%, route-compile regression)\n", name, ov, nv, delta
                    softwarn = 1
                }
            } else if (unit == "sim-events/s" && ov + 0 > 0) {
                delta = (nv - ov) / ov * 100
                if (name ~ /ShardScaling|\/shards=/) {
                    # Scaling entries depend on the recording machine
                    # core count: soft-diff only.
                    if (nv + 0 < (ov + 0) * 0.7) {
                        printf "warn %s sim-events/s: %s -> %s (%+.1f%%, host-dependent scaling entry)\n", name, ov, nv, delta
                        softwarn = 1
                    } else {
                        printf "info %s sim-events/s: %s -> %s (%+.1f%%)\n", name, ov, nv, delta
                    }
                } else if (nv + 0 < (ov + 0) / 3) {
                    printf "FAIL %s sim-events/s: %s -> %s (%+.1f%%, throughput collapsed)\n", name, ov, nv, delta
                    hardfail = 1
                } else if (nv + 0 < (ov + 0) * 0.7) {
                    printf "warn %s sim-events/s: %s -> %s (%+.1f%%, regression)\n", name, ov, nv, delta
                    softwarn = 1
                } else {
                    printf "info %s sim-events/s: %s -> %s (%+.1f%%)\n", name, ov, nv, delta
                }
            }
        }
    }
    if (onlyold != "") printf "note: only in %s:\n%s", oldfile, onlyold
    if (onlynew != "") printf "note: only in %s:\n%s", newfile, onlynew
    if (hardfail) {
        print "benchcmp: FAIL — hard gate (paper metrics / steady-state allocs / sim-events/s / route compile) tripped"
        exit 1
    }
    if (softwarn) print "benchcmp: ok (with allocation warnings)"
    else print "benchcmp: ok — paper metrics identical"
}
' </dev/null
