package tahoedyn

// Facade-level observability tests: the obs-on-vs-off identity across
// every shipped scenario file, the error-returning run family, and
// sink sharing under the parallel runner (exercised by `go test -race`).

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// loadShippedScenario parses one scenarios/*.json file and shortens it
// so every file's identity check stays fast.
func loadShippedScenario(t *testing.T, path string) Config {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg, err := ParseScenario(f)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 80 * time.Second
	return cfg
}

// assertSameRun compares the exported physics of two results.
func assertSameRun(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Events != b.Events {
		t.Fatalf("events = %d vs %d", a.Events, b.Events)
	}
	if !reflect.DeepEqual(a.Drops, b.Drops) {
		t.Fatalf("drop logs differ: %d vs %d", len(a.Drops), len(b.Drops))
	}
	if !reflect.DeepEqual(a.TrunkDeps, b.TrunkDeps) {
		t.Fatal("trunk departure logs differ")
	}
	if !reflect.DeepEqual(a.TrunkUtil, b.TrunkUtil) {
		t.Fatalf("utilization = %v vs %v", a.TrunkUtil, b.TrunkUtil)
	}
	if !reflect.DeepEqual(a.Delivered, b.Delivered) {
		t.Fatalf("delivered = %v vs %v", a.Delivered, b.Delivered)
	}
	if !reflect.DeepEqual(a.SenderStats, b.SenderStats) {
		t.Fatal("sender stats differ")
	}
}

// TestObsIdentityAcrossShippedScenarios runs every scenario file the
// repository ships, with and without the full observability stack, and
// asserts the physics is identical. This is the user-facing face of the
// never-perturb contract: whatever scenario a user traces, the trace is
// of the same run they would have had without it.
func TestObsIdentityAcrossShippedScenarios(t *testing.T) {
	files, err := filepath.Glob("scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("found %d shipped scenarios, want at least 5", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			plain := loadShippedScenario(t, path)
			observed := loadShippedScenario(t, path)
			sink := NewMemorySink()
			var samples atomic.Int64
			observed.Obs = &ObsOptions{
				Trace:   &TraceOptions{Sink: sink},
				Metrics: true,
				Progress: &Progress{
					Every: 10 * time.Second,
					Fn:    func(ProgressSnapshot) { samples.Add(1) },
				},
			}
			resObs, err := RunE(observed)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRun(t, Run(plain), resObs)
			if resObs.TraceErr != nil {
				t.Fatalf("TraceErr = %v", resObs.TraceErr)
			}
			if sink.Len() == 0 || samples.Load() == 0 || resObs.Metrics == nil {
				t.Fatalf("observability inert: events=%d samples=%d metrics=%v",
					sink.Len(), samples.Load(), resObs.Metrics != nil)
			}
		})
	}
}

// TestJSONLGoldenFixedPointOnFig45 runs the fig4-5 configuration with a
// JSONL sink and pins the stream's schema validity: it decodes, and
// re-encoding the decoded stream reproduces the bytes exactly.
func TestJSONLGoldenFixedPointOnFig45(t *testing.T) {
	cfg := Dumbbell(10*time.Millisecond, 20)
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 60 * time.Second
	var stream bytes.Buffer
	cfg.Obs = &ObsOptions{Trace: &TraceOptions{Sink: NewJSONLSink(&stream)}}
	res, err := RunE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceErr != nil {
		t.Fatal(res.TraceErr)
	}
	if !strings.HasPrefix(stream.String(), "{\"v\":1}\n") {
		t.Fatalf("stream missing version header: %.40q", stream.String())
	}
	locs, events, err := DecodeJSONLTrace(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("decoded no events")
	}
	var second bytes.Buffer
	if err := EncodeJSONLTrace(&second, locs, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream.Bytes(), second.Bytes()) {
		t.Fatal("decode∘encode of the fig4-5 stream is not a fixed point")
	}
}

// TestRunManyEAggregatesErrors pins the sweep-facing error contract:
// slots stay positional, bad configs come back as indexed errors, and
// good configs still run.
func TestRunManyEAggregatesErrors(t *testing.T) {
	good := Dumbbell(10*time.Millisecond, 20)
	good.Conns = []ConnSpec{{SrcHost: 0, DstHost: 1, Start: -1}}
	good.Warmup = 5 * time.Second
	good.Duration = 20 * time.Second
	bad := good
	bad.Conns = []ConnSpec{{SrcHost: 0, DstHost: 99, Start: -1}}

	results, err := RunManyE(context.Background(), 2, []Config{good, bad, good})
	if err == nil {
		t.Fatal("RunManyE swallowed the bad config")
	}
	if !strings.Contains(err.Error(), "config 1") {
		t.Fatalf("error does not index the bad config: %v", err)
	}
	if len(results) != 3 || results[0] == nil || results[1] != nil || results[2] == nil {
		t.Fatalf("results = %v", results)
	}
	assertSameRun(t, results[0], results[2])

	// Cancellation: a pre-canceled context skips every run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err = RunManyE(ctx, 2, []Config{good, good})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r != nil {
			t.Fatalf("result %d survived cancellation", i)
		}
	}
}

// TestSharedJSONLSinkUnderRunMany shares one JSONL sink across a
// parallel RunMany. Under `go test -race` this pins the sink's
// concurrency contract; in any mode it checks every line stayed intact
// (concurrent runs may interleave lines but never split one).
func TestSharedJSONLSinkUnderRunMany(t *testing.T) {
	// A plain buffer is safe: the sink's own mutex serializes every
	// access to the underlying writer (that is the contract under test).
	var stream bytes.Buffer
	sink := NewJSONLSink(&stream)
	var cfgs []Config
	for i := 0; i < 4; i++ {
		cfg := Dumbbell(10*time.Millisecond, 20)
		cfg.Seed = int64(i + 1)
		cfg.Conns = []ConnSpec{
			{SrcHost: 0, DstHost: 1, Start: -1},
			{SrcHost: 1, DstHost: 0, Start: -1},
		}
		cfg.Warmup = 5 * time.Second
		cfg.Duration = 25 * time.Second
		cfg.Obs = &ObsOptions{Trace: &TraceOptions{Sink: sink, RingSize: 256}}
		cfgs = append(cfgs, cfg)
	}
	results := RunMany(4, cfgs)
	for i, res := range results {
		if res.TraceErr != nil {
			t.Fatalf("run %d: TraceErr = %v", i, res.TraceErr)
		}
	}
	lines := strings.Split(strings.TrimSuffix(stream.String(), "\n"), "\n")
	if len(lines) < 1000 {
		t.Fatalf("shared sink saw only %d lines", len(lines))
	}
	headers := 0
	for _, line := range lines {
		if line == "{\"v\":1}" {
			headers++
			continue
		}
		if !strings.HasPrefix(line, "{\"t_ns\":") || !strings.HasSuffix(line, "}") {
			t.Fatalf("torn line: %q", line)
		}
	}
	if headers != len(cfgs) {
		t.Fatalf("saw %d headers, want %d (one per run)", headers, len(cfgs))
	}
}

// TestExperimentObserver pins the satellite wiring: an Observer set on
// ExpOptions receives samples from the simulations an experiment runs,
// without changing the outcome.
func TestExperimentObserver(t *testing.T) {
	var samples atomic.Int64
	opts := ExpOptions{Scale: 0.2, Observer: &Progress{
		Every: 10 * time.Second,
		Fn:    func(ProgressSnapshot) { samples.Add(1) },
	}}
	out := MustExperiment("oneway-smallpipe", opts)
	if samples.Load() == 0 {
		t.Fatal("Observer never fired")
	}
	plain := MustExperiment("oneway-smallpipe", ExpOptions{Scale: 0.2})
	if !reflect.DeepEqual(out.Metrics, plain.Metrics) {
		t.Fatal("Observer changed the experiment's metrics")
	}
}
