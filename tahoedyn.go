// Package tahoedyn reproduces Zhang, Shenker & Clark, "Observations on
// the Dynamics of a Congestion Control Algorithm: The Effects of Two-Way
// Traffic" (SIGCOMM 1991): a deterministic discrete-event network
// simulator, a from-scratch BSD 4.3-Tahoe TCP congestion control
// implementation, and the analysis machinery for the paper's phenomena —
// ACK-compression, packet clustering, and the in-phase/out-of-phase
// synchronization modes of two-way traffic.
//
// The package is a facade over the implementation packages. Typical use:
//
//	cfg := tahoedyn.Dumbbell(10*time.Millisecond, 20)
//	cfg.Conns = []tahoedyn.ConnSpec{
//	    {SrcHost: 0, DstHost: 1, Start: -1},
//	    {SrcHost: 1, DstHost: 0, Start: -1},
//	}
//	res := tahoedyn.Run(cfg)
//	fmt.Printf("bottleneck utilization: %.1f%%\n", res.UtilForward()*100)
//
// Or run a paper experiment by name:
//
//	out := tahoedyn.MustExperiment("fig4-5", tahoedyn.ExpOptions{})
//	out.WriteText(os.Stdout)
package tahoedyn

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/experiment"
	"tahoedyn/internal/link"
	"tahoedyn/internal/obs"
	"tahoedyn/internal/plot"
	"tahoedyn/internal/runner"
	"tahoedyn/internal/scenario"
	"tahoedyn/internal/sim"
	"tahoedyn/internal/topology"
	"tahoedyn/internal/trace"
	"tahoedyn/internal/tstore"
)

// Scenario construction and execution.
type (
	// Config describes a scenario: topology, link parameters, and
	// connections. See Dumbbell for the paper's standard parameters.
	Config = core.Config
	// ConnSpec describes one TCP connection in a scenario.
	ConnSpec = core.ConnSpec
	// Result is a completed run: traces, drops, utilizations, stats.
	Result = core.Result
	// CollapseEvent is one congestion-window collapse.
	CollapseEvent = core.CollapseEvent
	// LinkEvent is a mid-run change to one trunk link (Config.Events):
	// a bandwidth step or a link-down. Routing is updated incrementally
	// and runs with events stay byte-identical at every shard count.
	LinkEvent = core.LinkEvent
	// Arena is a reusable allocation context for back-to-back runs:
	// engine buckets, the event free list, the packet free list, and
	// the trace ring survive from one run to the next. Reuse is
	// behavior-neutral; see NewArena.
	Arena = core.Arena
	// SchedKind selects the event-scheduler implementation backing a
	// run's engine (Config.Sched): SchedWheel or SchedHeap.
	SchedKind = sim.SchedKind
)

// Event-scheduler kinds for Config.Sched. Both schedulers fire events
// in exactly the same (time, sequence) order — byte-identity across all
// shipped scenarios is asserted in tests — so the choice never changes
// results, only run speed. SchedDefault resolves to the wheel unless
// the TAHOEDYN_SCHED environment variable says otherwise.
const (
	SchedDefault = sim.SchedDefault
	SchedWheel   = sim.SchedWheel
	SchedHeap    = sim.SchedHeap
)

// ParseSched maps a CLI string ("heap", "wheel", "default", "") to a
// SchedKind for Config.Sched; both CLIs expose it as -sched.
func ParseSched(s string) (SchedKind, error) { return sim.ParseSched(s) }

// SetDefaultShards overrides the shard count a Config with Shards == 0
// runs at (normally 1, or the TAHOEDYN_SHARDS environment variable);
// both CLIs expose it as -shards. Like the scheduler choice, sharding
// is a wall-clock knob only: results are byte-identical at any count.
func SetDefaultShards(n int) { core.SetDefaultShards(n) }

// SetDefaultSched overrides what SchedDefault resolves to for engines
// created after the call (the CLI -sched hook, useful where configs are
// built internally, e.g. named experiments). Set it once, before any
// runs start; passing SchedDefault is a no-op.
func SetDefaultSched(k SchedKind) { sim.SetDefaultSched(k) }

// Analysis types.
type (
	// Series is a step-function time series (queue length, cwnd, ...).
	Series = trace.Series
	// DropEvent is one drop-tail discard.
	DropEvent = trace.DropEvent
	// Epoch is one congestion epoch (a burst of drops).
	Epoch = analysis.Epoch
	// PhaseMode classifies synchronization: in-phase, out-of-phase, mixed.
	PhaseMode = analysis.PhaseMode
	// CompressionStats summarizes ACK inter-arrival compression.
	CompressionStats = analysis.CompressionStats
)

// Phase mode constants.
const (
	PhaseIn    = analysis.PhaseIn
	PhaseOut   = analysis.PhaseOut
	PhaseMixed = analysis.PhaseMixed
)

// Switch policy constants for Config.Discard and Config.Discipline.
//
// Deprecated: the enum pair survives as sugar over the structured
// Config.Queue surface; prefer a QueueSpec, which also covers RED.
const (
	// DropTailDiscard discards arrivals at a full buffer (the paper's
	// switches).
	DropTailDiscard = core.DropTail
	// RandomDropDiscard evicts a uniformly chosen buffered packet.
	RandomDropDiscard = core.RandomDrop
	// FIFODiscipline is first-in-first-out service.
	FIFODiscipline = core.FIFO
	// FairQueueDiscipline is per-connection self-clocked fair queueing.
	FairQueueDiscipline = core.FairQueue
)

// Queue-discipline and link-behavior surface. A QueueSpec on
// Config.Queue (or per link via Config.LinkQueue) selects the switch
// output-port discipline — drop-tail, random-drop, fair-queue, or RED —
// and a BehaviorSpec on Config.Behavior (or Config.LinkBehavior)
// impairs trunk lines with seeded stochastic loss (Bernoulli or
// Gilbert-Elliott), bounded jitter, optional reordering, and
// trace-driven bandwidth replay. All stochastic draws come from
// per-entity streams derived from Config.Seed, so results are
// deterministic and identical at every shard count.
type (
	// QueueSpec declares a queue discipline by policy name plus RED
	// thresholds; see QueuePolicy* for names.
	QueueSpec = link.QueueSpec
	// BehaviorSpec declares a link impairment; the zero value is an
	// ideal line.
	BehaviorSpec = link.BehaviorSpec
	// SourceSpec, on ConnSpec.Source, replaces a connection's TCP
	// endpoints with a non-TCP generator: constant-bit-rate cross
	// traffic ("cbr") or an exponential on/off source ("onoff").
	SourceSpec = core.SourceSpec
	// RateTrace is a loaded bandwidth-replay schedule for
	// BehaviorSpec.Trace; the schedule loops.
	RateTrace = link.RateTrace
)

// Queue policy names for QueueSpec.Policy.
const (
	QueuePolicyDropTail   = link.PolicyDropTail
	QueuePolicyRandomDrop = link.PolicyRandomDrop
	QueuePolicyFairQueue  = link.PolicyFairQueue
	QueuePolicyRED        = link.PolicyRED
)

// Source kinds for SourceSpec.Kind.
const (
	SourceTCP   = core.SourceTCP
	SourceCBR   = core.SourceCBR
	SourceOnOff = core.SourceOnOff
)

// ParseQueueSpec parses the -queue flag syntax: a policy name
// optionally followed by ":" and key=value parameters, e.g. "red" or
// "red:min=5,max=15,p=0.02,wq=0.002".
func ParseQueueSpec(s string) (*QueueSpec, error) { return link.ParseQueueSpec(s) }

// ParseLinkEvent parses the -event flag syntax: comma-separated
// key=value tokens, e.g. "link=1,t=120s,bw=25000" or "link=3,t=2m,down".
func ParseLinkEvent(s string) (LinkEvent, error) { return core.ParseLinkEvent(s) }

// ParseBehaviorSpec parses the -behavior flag syntax: comma-separated
// terms, e.g. "loss=0.01,jitter=2ms" or "ge=0.01/0.3/0.5" or
// "trace=rates.rt".
func ParseBehaviorSpec(s string) (*BehaviorSpec, error) { return link.ParseBehaviorSpec(s) }

// LoadRateTrace reads a bandwidth-replay schedule file: one
// "<duration> <bits/s>" step per line, #-comments allowed.
func LoadRateTrace(path string) (*RateTrace, error) { return link.LoadRateTrace(path) }

// ParseRateTrace parses the schedule syntax from a reader.
func ParseRateTrace(r io.Reader) (*RateTrace, error) { return link.ParseRateTrace(r) }

// Experiment types.
type (
	// ExpOptions tunes an experiment run (seed, duration scale).
	ExpOptions = experiment.Options
	// Outcome is an experiment's paper-vs-measured report.
	Outcome = experiment.Outcome
	// ExperimentDef is a registry entry: name, title, runner.
	ExperimentDef = experiment.Definition
)

// PlotOptions controls ASCII rendering of traces.
type PlotOptions = plot.Options

// Observability types. Attach an ObsOptions to Config.Obs to trace
// packet lifecycle events, collect per-run metrics on Result.Metrics,
// or sample live progress. A nil Config.Obs costs nothing (the
// steady-state hot path stays allocation-free) and enabling any of it
// never changes the simulation Result.
type (
	// ObsOptions selects what a run observes: Trace, Metrics, Progress.
	ObsOptions = obs.Options
	// TraceOptions configures packet-event tracing: the Sink, an
	// optional Filter, and the flush granularity (RingSize).
	TraceOptions = obs.TraceOptions
	// TraceFilter restricts tracing to a connection and/or event types.
	TraceFilter = obs.Filter
	// TraceEvent is one recorded packet lifecycle event.
	TraceEvent = obs.Event
	// TraceEventType enumerates the lifecycle stages (TraceEnqueue...).
	TraceEventType = obs.Type
	// TraceSink receives batches of trace events (JSONL, binary, memory).
	TraceSink = obs.Sink
	// Progress asks for periodic snapshots of a running simulation.
	Progress = obs.Progress
	// ProgressSnapshot is one liveness sample: sim clock and event count.
	ProgressSnapshot = obs.Snapshot
	// Metrics is the per-run registry exported on Result.Metrics.
	Metrics = obs.Metrics
)

// Trace event types for TraceFilter.Types (combine with TraceFilter's
// helpers or ParseTraceFilter).
const (
	TraceEnqueue    = obs.Enqueue
	TraceDequeue    = obs.Dequeue
	TraceTransmit   = obs.Transmit
	TraceDrop       = obs.Drop
	TraceDeliver    = obs.Deliver
	TraceTimeout    = obs.Timeout
	TraceCwndChange = obs.CwndChange
)

// NewJSONLSink returns a sink writing one JSON object per event to w,
// prefixed by a version header line. Safe for use by concurrent runs.
func NewJSONLSink(w io.Writer) TraceSink { return obs.NewJSONLSink(w) }

// NewBinarySink returns a sink writing the compact versioned binary
// trace format to w. One sink serves one run.
func NewBinarySink(w io.Writer) TraceSink { return obs.NewBinarySink(w) }

// NewMemorySink returns an in-memory sink, mainly for tests.
func NewMemorySink() *obs.MemorySink { return obs.NewMemorySink() }

// ParseTraceFilter parses the CLI filter syntax, e.g.
// "conn=2,type=drop|timeout".
func ParseTraceFilter(s string) (TraceFilter, error) { return obs.ParseFilter(s) }

// EncodeJSONLTrace writes a complete single-run JSONL trace stream
// (header plus events); the pure twin of NewJSONLSink.
func EncodeJSONLTrace(w io.Writer, locs []string, events []TraceEvent) error {
	return obs.EncodeJSONL(w, locs, events)
}

// DecodeJSONLTrace parses a JSONL trace stream back into its location
// table and events, rejecting streams from a newer schema version.
func DecodeJSONLTrace(r io.Reader) (locs []string, events []TraceEvent, err error) {
	return obs.DecodeJSONL(r)
}

// EncodeBinaryTrace writes a complete single-run binary trace stream.
func EncodeBinaryTrace(w io.Writer, locs []string, events []TraceEvent) error {
	return obs.EncodeBinary(w, locs, events)
}

// DecodeBinaryTrace parses a binary trace stream, rejecting bad magic
// and newer versions.
func DecodeBinaryTrace(r io.Reader) (locs []string, events []TraceEvent, err error) {
	return obs.DecodeBinary(r)
}

// Out-of-core trace store and invariant engine (internal/tstore): a
// columnar, chunked on-disk format with an index that lets queries skip
// chunks, plus streaming invariant checks that run online during a run
// (Config.Invariants) or offline over any stored trace.
type (
	// TraceStore is an opened chunked trace store; scans stream one
	// chunk at a time, so memory stays bounded for any trace size.
	TraceStore = tstore.Store
	// TraceStoreWriter streams events into the store format. It is a
	// TraceSink, so a run traces straight to disk.
	TraceStoreWriter = tstore.Writer
	// TraceStoreOptions tunes the writer (events per chunk).
	TraceStoreOptions = tstore.WriterOptions
	// TraceQuery selects events: time window, conn/type filter, location.
	TraceQuery = tstore.Query
	// TraceScanner is a streaming event source queries run over: a
	// *TraceStore, or a TraceSlice for in-memory traces.
	TraceScanner = tstore.Scanner
	// TraceSlice adapts an in-memory trace to the TraceScanner interface.
	TraceSlice = tstore.SliceSource
	// TraceChunkInfo is one store-index entry (extent, time/conn/loc
	// ranges, type mask).
	TraceChunkInfo = tstore.ChunkInfo
	// WindowStat aggregates one time window of a windowed query.
	WindowStat = tstore.WindowStat
	// WindowOptions shapes a windowed aggregation (width, per-location).
	WindowOptions = tstore.WindowOptions
	// InvariantOptions selects which invariants run and their bounds.
	InvariantOptions = tstore.CheckOptions
	// InvariantViolation pinpoints the first invariant breach: rule,
	// event index, location, and the offending event. It implements
	// error and surfaces as Result.Invariant.
	InvariantViolation = tstore.Violation
	// InvariantChecker is the online engine: a TraceSink that verifies
	// while forwarding to an optional inner sink.
	InvariantChecker = tstore.Checker
)

// ErrStopScan, returned from a TraceScanner.Scan callback, ends the
// scan early without error.
var ErrStopScan = tstore.ErrStop

// NewTraceStoreSink returns a sink streaming events to w in the chunked
// columnar store format. Close finalizes the store's index; the caller
// still owns (and closes) w.
func NewTraceStoreSink(w io.Writer, o TraceStoreOptions) *TraceStoreWriter {
	return tstore.NewWriter(w, o)
}

// OpenTraceStore opens a stored trace for querying.
func OpenTraceStore(path string) (*TraceStore, error) { return tstore.Open(path) }

// NewInvariantChecker returns an online invariant checker forwarding to
// inner (nil to only check). Config.Invariants wires one automatically.
func NewInvariantChecker(inner TraceSink, o InvariantOptions) *InvariantChecker {
	return tstore.NewChecker(inner, o)
}

// CheckTraceInvariants runs the invariant engine offline over a stored
// or in-memory trace, returning the events checked and the first
// violation (nil for a clean trace).
func CheckTraceInvariants(sc TraceScanner, o InvariantOptions) (uint64, *InvariantViolation, error) {
	return tstore.Check(sc, o)
}

// CountTraceEvents counts the events matching q, answering from the
// store index where possible.
func CountTraceEvents(sc TraceScanner, q TraceQuery) (uint64, error) { return tstore.Count(sc, q) }

// WindowedTrace aggregates the events matching q into fixed-width time
// windows, optionally grouped per location — per-link throughput and
// queue statistics over time.
func WindowedTrace(sc TraceScanner, q TraceQuery, o WindowOptions) (map[string][]WindowStat, error) {
	return tstore.Windowed(sc, q, o)
}

// TraceQuantiles estimates quantiles of the Val field over the events
// matching q (exact up to 65536 samples, streaming P² beyond).
func TraceQuantiles(sc TraceScanner, q TraceQuery, probs []float64) ([]float64, uint64, error) {
	return tstore.Quantiles(sc, q, probs)
}

// Topology types, for scenarios beyond the default switch line. Set
// Config.Topology to a *Graph; links inherit the Trunk*/Buffer defaults
// unless overridden per link.
type (
	// Graph is a declarative network: switches, duplex links, host
	// placement, and optional route overrides.
	Graph = topology.Graph
	// LinkSpec is one duplex link with optional per-link overrides.
	LinkSpec = topology.LinkSpec
	// HostSpec places one host on a switch.
	HostSpec = topology.HostSpec
	// RouteSpec overrides the computed next hop for one (switch, host).
	RouteSpec = topology.RouteSpec
	// CompiledTopology is a validated graph with forwarding tables.
	CompiledTopology = topology.Compiled
)

// UnboundedBuffer marks a link buffer as infinite in LinkSpec.Buffer
// (0 means "inherit the scenario default").
const UnboundedBuffer = topology.Unbounded

// ChainTopology returns a line of n switches, one host each — the
// dumbbell for n = 2, the four-switch line of [19] for n = 4.
func ChainTopology(n int) Graph { return topology.Chain(n) }

// ParkingLotTopology returns a chain of hops+1 switches — the classic
// multi-bottleneck fairness topology when loaded with one long
// connection (host 0 to host hops) against one cross connection per hop.
func ParkingLotTopology(hops int) Graph { return topology.ParkingLot(hops) }

// BarabasiAlbertTopology returns a seeded scale-free graph: n switches,
// each joining switch attaching m links by preferential attachment.
// Same (n, m, seed) → same graph, on every platform.
func BarabasiAlbertTopology(n, m int, seed int64) Graph {
	return topology.BarabasiAlbert(n, m, seed)
}

// WaxmanTopology returns a seeded Waxman random geometric graph of n
// switches with a guaranteed connected backbone. Same (n, seed) → same
// graph, on every platform.
func WaxmanTopology(n int, seed int64) Graph { return topology.Waxman(n, seed) }

// topoSpecForms lists the accepted -topology spellings; every parse
// error repeats it so a typo is self-correcting at the CLI.
const topoSpecForms = "dumbbell, chain:<n>, parking-lot:<h>, ba:<n>:<m>:<seed>, or waxman:<n>:<seed>"

// ParseTopoSpec resolves a one-flag topology spec — "dumbbell",
// "chain:N", "parking-lot:H", "ba:N:M:SEED", or "waxman:N:SEED" — into
// an optional explicit graph and its canonical workload. Connections 0
// and 1 are always the end-to-end two-way pair (the pair the
// synchronization analyses report on): hosts 0 and n-1 for the
// generators with a natural line order, and for the random graphs the
// host on switch 0 against the host on the last switch. Parking-lot
// adds one single-hop cross connection per trunk after them. A nil
// graph means the default dumbbell. Both CLIs expose the syntax as
// -topology; it is also the one-flag way to build the large chains and
// random graphs the sharded-run and scale benchmarks use.
func ParseTopoSpec(spec string) (*Graph, []ConnSpec, error) {
	pair := func(a, b int) []ConnSpec {
		return []ConnSpec{
			{SrcHost: a, DstHost: b, Start: -1},
			{SrcHost: b, DstHost: a, Start: -1},
		}
	}
	name, arg, hasArg := strings.Cut(spec, ":")
	// args parses the generator's colon-separated integer arguments,
	// naming the offending token and the accepted form on failure.
	args := func(form string, want int) ([]int64, error) {
		if !hasArg {
			return nil, fmt.Errorf("topology %q: %s needs arguments (want %s)", spec, name, form)
		}
		fields := strings.Split(arg, ":")
		if len(fields) != want {
			return nil, fmt.Errorf("topology %q: %s takes %d argument(s) (want %s)", spec, name, want, form)
		}
		out := make([]int64, want)
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("topology %q: bad token %q (want %s)", spec, f, form)
			}
			out[i] = v
		}
		return out, nil
	}
	switch name {
	case "", "dumbbell":
		if hasArg {
			return nil, nil, fmt.Errorf("topology %q: dumbbell takes no arguments", spec)
		}
		return nil, pair(0, 1), nil
	case "chain":
		v, err := args("chain:<n> with n >= 2", 1)
		if err != nil {
			return nil, nil, err
		}
		n := int(v[0])
		if n < 2 {
			return nil, nil, fmt.Errorf("topology %q: chain needs n >= 2", spec)
		}
		g := ChainTopology(n)
		return &g, pair(0, n-1), nil
	case "parking-lot":
		v, err := args("parking-lot:<h> with h >= 1", 1)
		if err != nil {
			return nil, nil, err
		}
		n := int(v[0])
		if n < 1 {
			return nil, nil, fmt.Errorf("topology %q: parking-lot needs h >= 1", spec)
		}
		g := ParkingLotTopology(n)
		conns := pair(0, n)
		for h := 0; h < n; h++ {
			conns = append(conns, ConnSpec{SrcHost: h, DstHost: h + 1, Start: -1})
		}
		return &g, conns, nil
	case "ba":
		v, err := args("ba:<n>:<m>:<seed> with n >= 2 and 1 <= m < n", 3)
		if err != nil {
			return nil, nil, err
		}
		n, m := int(v[0]), int(v[1])
		if n < 2 {
			return nil, nil, fmt.Errorf("topology %q: ba needs n >= 2", spec)
		}
		if m < 1 || m >= n {
			return nil, nil, fmt.Errorf("topology %q: ba needs 1 <= m < n, got m=%d", spec, m)
		}
		g := BarabasiAlbertTopology(n, m, v[2])
		return &g, pair(0, n-1), nil
	case "waxman":
		v, err := args("waxman:<n>:<seed> with n >= 2", 2)
		if err != nil {
			return nil, nil, err
		}
		n := int(v[0])
		if n < 2 {
			return nil, nil, fmt.Errorf("topology %q: waxman needs n >= 2", spec)
		}
		g := WaxmanTopology(n, v[1])
		return &g, pair(0, n-1), nil
	default:
		return nil, nil, fmt.Errorf("unknown topology %q (want %s)", spec, topoSpecForms)
	}
}

// CompileTopology validates and compiles cfg's effective topology
// (explicit or default line), returning per-link resolved parameters and
// forwarding tables. Run does this internally; it is exported for
// validation and inspection.
func CompileTopology(cfg Config) (*CompiledTopology, error) {
	return cfg.CompileTopology()
}

// Dumbbell returns the paper's Figure-1 configuration: two switches, a
// 50 Kbps bottleneck with propagation delay tau and the given per-port
// buffer (0 = infinite), 10 Mbps access links, 500 B data and 50 B ACK
// packets. Add connections to Config.Conns before running.
func Dumbbell(tau time.Duration, buffer int) Config {
	return core.DumbbellConfig(tau, buffer)
}

// Run executes a scenario to completion and returns its traces and
// statistics. Runs are deterministic in Config (including Seed).
//
// Run is the MustRun-style spelling: an invalid Config panics. Use RunE
// for an error return, or RunContext to also support cancellation.
func Run(cfg Config) *Result { return core.Run(cfg) }

// RunE is Run with an error return: an invalid Config (bad topology,
// out-of-range connection endpoints, negative parameters) comes back as
// an error instead of a panic. A valid Config produces the same Result
// as Run, byte for byte.
func RunE(cfg Config) (*Result, error) { return core.RunE(cfg) }

// RunContext is RunE under a context: canceling ctx stops the
// simulation within one event batch and returns ctx's error. The
// partial run is discarded — cancellation never yields a Result — and
// observability sinks attached via Config.Obs are closed cleanly.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return core.RunContext(ctx, cfg)
}

// RunMany executes the configurations on a worker pool of the given
// size and returns the results in configuration order. workers follows
// the runner convention: 0 means GOMAXPROCS, <= 1 means serial. Each run
// is single-threaded and deterministic in its Config, so the returned
// slice is byte-for-byte identical for every worker count.
func RunMany(workers int, cfgs []Config) []*Result {
	return runner.RunConfigs(workers, cfgs)
}

// RunManyLive is RunMany with per-worker arena reuse and an optional
// completion callback: every worker keeps one Arena for the whole
// sweep, so an N-point sweep pays engine and packet-pool allocation
// once per worker instead of once per point. done(k, n), when non-nil,
// fires after each job (on any worker goroutine — it must be safe for
// concurrent use). Results are identical to RunMany, byte for byte.
func RunManyLive(workers int, cfgs []Config, done func(completed, total int)) []*Result {
	return runner.RunConfigsLive(workers, cfgs, done)
}

// NewArena returns an empty Arena: its first run allocates, later runs
// reuse. An Arena is single-goroutine, like a run; use one per worker.
func NewArena() *Arena { return core.NewArena() }

// RunManyE is RunMany with error aggregation and cancellation: the
// returned slice always has len(cfgs) entries in configuration order,
// failed or canceled runs are nil, and the error joins every per-config
// failure (each tagged "config %d"). Canceling ctx stops in-flight runs
// within one event batch and skips runs not yet started.
func RunManyE(ctx context.Context, workers int, cfgs []Config) ([]*Result, error) {
	return runner.RunConfigsE(ctx, workers, cfgs)
}

// ParallelDo runs fn(i) for every i in [0, n) on a worker pool of the
// given size (0 = GOMAXPROCS, <= 1 = serial on the calling goroutine).
// It is the generic fan-out primitive behind RunMany, for callers whose
// jobs are not plain configs — e.g. rendering experiment reports.
func ParallelDo(workers, n int, fn func(i int)) { runner.Each(workers, n, fn) }

// ParallelDoLive is ParallelDo with a completion callback: done(k, n)
// fires after each job, reporting k of n complete. done may run on any
// worker goroutine, so it must be safe for concurrent use; the sweep
// CLIs use it to print liveness to stderr without perturbing output
// ordering.
func ParallelDoLive(workers, n int, fn func(i int), done func(completed, total int)) {
	runner.EachDone(workers, n, fn, done)
}

// ParallelDoWorkers is ParallelDo with worker identity: fn(worker, i)
// runs job i on worker `worker`, a stable index below the clamped
// worker count (always < n). Each worker runs its jobs sequentially on
// one goroutine, so callers can keep lock-free per-worker state — an
// Arena per worker is the intended use.
func ParallelDoWorkers(workers, n int, fn func(worker, i int)) {
	runner.EachWorker(workers, n, fn)
}

// Experiments lists every paper experiment in presentation order.
func Experiments() []ExperimentDef { return experiment.All() }

// RunAllExperiments executes every registered experiment, fanning them
// across opts.Parallel workers, and returns outcomes in registry order.
func RunAllExperiments(opts ExpOptions) []*Outcome { return experiment.RunAll(opts) }

// Experiment runs the named paper experiment.
func Experiment(name string, opts ExpOptions) (*Outcome, error) {
	def, ok := experiment.Find(name)
	if !ok {
		return nil, fmt.Errorf("tahoedyn: unknown experiment %q", name)
	}
	return def.Run(opts), nil
}

// MustExperiment is Experiment, panicking on unknown names.
//
// Deprecated: prefer Experiment, which reports an unknown name as an
// error. MustExperiment is kept for existing callers and one-liner
// examples; it will not be removed.
func MustExperiment(name string, opts ExpOptions) *Outcome {
	o, err := Experiment(name, opts)
	if err != nil {
		panic(err)
	}
	return o
}

// Analysis helpers re-exported for building custom studies.

// Epochs groups drops into congestion epochs separated by at least gap.
func Epochs(drops []DropEvent, gap time.Duration) []Epoch {
	return analysis.Epochs(drops, gap)
}

// Phase classifies the synchronization of two series over [from, to].
func Phase(a, b *Series, from, to, step time.Duration) (PhaseMode, float64) {
	return analysis.Phase(a, b, from, to, step)
}

// AckCompression computes ACK-compression statistics from sender-side
// ACK arrival times, given the bottleneck data transmission time.
func AckCompression(arrivals []time.Duration, dataTx, from time.Duration) CompressionStats {
	return analysis.AckCompression(arrivals, dataTx, from)
}

// Clustering is the fraction of adjacent same-connection pairs in a
// departure sequence (1 = completely clustered, 0 = interleaved).
func Clustering(deps []trace.Departure) float64 { return analysis.Clustering(deps) }

// PlotASCII renders one or more series as a terminal plot, the paper's
// figures in ASCII.
func PlotASCII(w io.Writer, opts PlotOptions, series ...*Series) error {
	return plot.ASCII(w, opts, series...)
}

// PlotTSV writes series resampled on a uniform grid as tab-separated
// values.
func PlotTSV(w io.Writer, from, to, step time.Duration, series ...*Series) error {
	return plot.TSV(w, from, to, step, series...)
}

// ParseScenario reads a JSON scenario description (see
// internal/scenario for the format) and returns a runnable Config.
// Unknown fields are rejected, with one joined error naming every bad
// field path; use ParseScenarioLenient to ignore them instead.
func ParseScenario(r io.Reader) (Config, error) {
	return scenario.Parse(r)
}

// ParseScenarioLenient is ParseScenario with unknown fields ignored
// rather than rejected. The paths of the ignored fields are returned so
// callers can warn (tahoe-sim -lenient prints them to stderr).
func ParseScenarioLenient(r io.Reader) (Config, []string, error) {
	return scenario.ParseLenient(r)
}
