package tahoedyn

// Scale benchmarks: the internet-scale topology core. Where
// bench_test.go tracks the paper's figures and the engine hot path,
// this file tracks the axes the CSR topology work opened up — how fast
// routes compile on thousand-switch graphs, how much memory a switch
// costs at 10⁵ nodes, and what event throughput looks like with 10⁵
// concurrent flows. The recorded numbers live in docs/BENCH_pr7.json;
// scripts/benchcmp.sh diffs them like every other benchmark (events/run
// stays a hard identity gate, sim-events/s soft-gates on collapse, and
// /shards= sub-benchmarks get the host-dependent exemption).

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tahoedyn/internal/core"
	"tahoedyn/internal/topology"
)

// liveHeap forces a collection and returns the live heap, so the delta
// across two calls with an object kept reachable measures what that
// object retains (resident bytes, not allocation churn).
func liveHeap() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// BenchmarkTopologyBuild times route compilation on the graphs that
// used to be out of reach: the dense per-switch next-hop arrays were
// O(S×H) memory and the per-source Dijkstra O(S²) time, which put a
// 4096-switch chain at ~17 minutes by extrapolation from the PR6
// recording (16 s at 1024 full-host switches, ×4² for the quadratic
// term). The CSR + interval-run compiler does the same graph in under a
// second. bytes/switch is the resident cost of the compiled tables,
// measured once off the clock with the Compiled kept alive across a GC.
func BenchmarkTopologyBuild(b *testing.B) {
	cases := []struct {
		name  string
		graph func() topology.Graph
	}{
		{"chain=1024", func() topology.Graph { return topology.Chain(1024) }},
		{"chain=4096", func() topology.Graph { return topology.Chain(4096) }},
		{"ba=4096", func() topology.Graph { return topology.BarabasiAlbert(4096, 2, 7) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			g := tc.graph()
			def := topology.Defaults{
				Bandwidth: core.DefaultTrunkBandwidth,
				Delay:     10 * time.Millisecond,
				Buffer:    20,
				DataSize:  core.DefaultDataSize,
			}

			base := liveHeap()
			c, err := g.Compile(def)
			if err != nil {
				b.Fatal(err)
			}
			resident := liveHeap() - base
			runtime.KeepAlive(c)
			if resident < 0 {
				resident = 0
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Compile(def); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(resident)/float64(g.Switches), "bytes/switch")
		})
	}
}

// BenchmarkWaveSpeed runs the wave-speed experiment (the congestion-
// wave study extended with a velocity fit across eight bottlenecks) at
// the standard half scale, reporting the usual experiment metrics.
func BenchmarkWaveSpeed(b *testing.B) {
	runExperiment(b, "wave-speed", nil)
}

// internetScaleConfig is a 10⁵-switch chain with 128 host clusters
// spread evenly along it and 64 long-haul flows between neighboring
// clusters (~780 hops each). Trunk measurement is gated off — at this
// scale per-trunk queue series would dominate memory without telling us
// anything the access ports don't — so the run exercises pure
// forwarding physics across the full diameter.
func internetScaleConfig() core.Config {
	const nSw = 100_000
	const nHosts = 128
	g := topology.Chain(nSw)
	g.Hosts = make([]topology.HostSpec, nHosts)
	stride := nSw / nHosts
	for i := range g.Hosts {
		g.Hosts[i] = topology.HostSpec{Switch: i * stride}
	}
	cfg := core.Config{
		Topology:      &g,
		TrunkDelay:    time.Millisecond,
		Buffer:        20,
		Seed:          7,
		Warmup:        2 * time.Second,
		Duration:      30 * time.Second,
		MeasureTrunks: []int{},
		MeasureConns:  []int{},
	}
	for k := 0; k+1 < nHosts; k += 2 {
		cfg.Conns = append(cfg.Conns, core.ConnSpec{SrcHost: k, DstHost: k + 1, Start: -1})
	}
	return cfg
}

// BenchmarkInternetScale builds and runs the 10⁵-switch network to
// completion. bytes/switch is the resident cost of the whole built
// simulation (compiled routes, switch tables, ports) per switch,
// measured once off the clock. The shards legs force the network
// through the region runner; events/run must come out identical (the
// sharding identity contract), while their sim-events/s is a
// host-dependent scaling number like BenchmarkShardScaling's.
func BenchmarkInternetScale(b *testing.B) {
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			cfg := internetScaleConfig()
			cfg.Shards = k

			base := liveHeap()
			s := core.Build(cfg)
			resident := liveHeap() - base
			runtime.KeepAlive(s)
			if resident < 0 {
				resident = 0
			}
			s.Finish() // off the clock: the resident probe's run completes

			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			var events uint64
			for i := 0; i < b.N; i++ {
				events = core.Run(cfg).Events
			}
			b.StopTimer()
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "sim-events/s")
			b.ReportMetric(float64(events), "events/run")
			b.ReportMetric(float64(resident)/float64(cfg.Topology.Switches), "bytes/switch")
		})
	}
}

// flowScaleConfig packs nConns one-hop flows onto a 64-switch chain:
// the flow-count axis with the topology held small. Per-connection
// measurement is gated off, so what remains per flow is exactly the
// protocol state (tcp.Sender/Receiver) plus its slot in the result
// containers — the footprint the compact-state work minimizes.
func flowScaleConfig(nConns int) core.Config {
	g := topology.Chain(64)
	cfg := core.Config{
		Topology:      &g,
		TrunkDelay:    time.Millisecond,
		Buffer:        20,
		Seed:          7,
		Warmup:        2 * time.Second,
		Duration:      8 * time.Second,
		MeasureTrunks: []int{},
		MeasureConns:  []int{},
	}
	for k := 0; k < nConns; k++ {
		t := k % 63
		cfg.Conns = append(cfg.Conns, core.ConnSpec{SrcHost: t, DstHost: t + 1, Start: -1})
	}
	return cfg
}

// BenchmarkFlowScale runs 10⁴ and 10⁵ concurrent connections to
// completion, serially and through the region runner (the /shards=4 leg
// partitions the 64-switch chain; events/run must be identical — the
// sharding identity contract). bytes/conn is the resident cost of the
// built simulation per connection (protocol state dominates; the
// 64-switch fabric is noise at these counts), measured once off the
// clock.
func BenchmarkFlowScale(b *testing.B) {
	for _, leg := range []struct{ conns, shards int }{
		{10_000, 1},
		{100_000, 1},
		{100_000, 4},
	} {
		n := leg.conns
		b.Run(fmt.Sprintf("conns=%d/shards=%d", n, leg.shards), func(b *testing.B) {
			cfg := flowScaleConfig(n)
			cfg.Shards = leg.shards

			base := liveHeap()
			s := core.Build(cfg)
			resident := liveHeap() - base
			runtime.KeepAlive(s)
			if resident < 0 {
				resident = 0
			}
			s.Finish()

			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			var events uint64
			for i := 0; i < b.N; i++ {
				events = core.Run(cfg).Events
			}
			b.StopTimer()
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "sim-events/s")
			b.ReportMetric(float64(events), "events/run")
			b.ReportMetric(float64(resident)/float64(n), "bytes/conn")
		})
	}
}

// TestLargeChainSmoke is the CI large-topology leg: parse chain:2048
// through the public facade, build it, and run the end-to-end flow pair
// to completion — race detector off, wall-clock bounded by the CI step
// timeout. Gated behind TAHOEDYN_LARGE_SMOKE so the tier-1 suite stays
// fast on developer machines.
func TestLargeChainSmoke(t *testing.T) {
	if os.Getenv("TAHOEDYN_LARGE_SMOKE") == "" {
		t.Skip("set TAHOEDYN_LARGE_SMOKE=1 to run the large-topology smoke leg")
	}
	g, conns, err := ParseTopoSpec("chain:2048")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Topology:   g,
		TrunkDelay: time.Millisecond,
		Buffer:     20,
		Conns:      conns,
		Seed:       7,
		Warmup:     2 * time.Second,
		Duration:   12 * time.Second,
	}
	res := Run(cfg)
	if res.Events == 0 {
		t.Fatal("large chain ran no events")
	}
	for k := range conns {
		if res.SenderStats[k].DataSent == 0 {
			t.Fatalf("conn %d sent nothing across the 2048-switch chain", k)
		}
	}
}
