package tahoedyn

// Scale benchmarks: the internet-scale topology core. Where
// bench_test.go tracks the paper's figures and the engine hot path,
// this file tracks the axes the CSR topology work opened up — how fast
// routes compile on thousand-switch graphs, how much memory a switch
// costs at 10⁵ nodes, and what event throughput looks like with 10⁵
// concurrent flows. The recorded numbers live in docs/BENCH_pr7.json;
// scripts/benchcmp.sh diffs them like every other benchmark (events/run
// stays a hard identity gate, sim-events/s soft-gates on collapse, and
// /shards= sub-benchmarks get the host-dependent exemption).

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tahoedyn/internal/core"
	"tahoedyn/internal/topology"
)

// liveHeap forces a collection and returns the live heap, so the delta
// across two calls with an object kept reachable measures what that
// object retains (resident bytes, not allocation churn).
func liveHeap() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// BenchmarkTopologyBuild times route compilation on the graphs that
// used to be out of reach: the dense per-switch next-hop arrays were
// O(S×H) memory and the per-source Dijkstra O(S²) time, which put a
// 4096-switch chain at ~17 minutes by extrapolation from the PR6
// recording (16 s at 1024 full-host switches, ×4² for the quadratic
// term). The CSR + interval-run compiler does the same graph in under a
// second. bytes/switch is the resident cost of the compiled tables,
// measured once off the clock with the Compiled kept alive across a GC.
func BenchmarkTopologyBuild(b *testing.B) {
	cases := []struct {
		name  string
		graph func() topology.Graph
	}{
		{"chain=1024", func() topology.Graph { return topology.Chain(1024) }},
		{"chain=4096", func() topology.Graph { return topology.Chain(4096) }},
		{"ba=4096", func() topology.Graph { return topology.BarabasiAlbert(4096, 2, 7) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			g := tc.graph()
			def := topology.Defaults{
				Bandwidth: core.DefaultTrunkBandwidth,
				Delay:     10 * time.Millisecond,
				Buffer:    20,
				DataSize:  core.DefaultDataSize,
			}

			base := liveHeap()
			c, err := g.Compile(def)
			if err != nil {
				b.Fatal(err)
			}
			resident := liveHeap() - base
			runtime.KeepAlive(c)
			if resident < 0 {
				resident = 0
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Compile(def); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(resident)/float64(g.Switches), "bytes/switch")
		})
	}
}

// BenchmarkWaveSpeed runs the wave-speed experiment (the congestion-
// wave study extended with a velocity fit across eight bottlenecks) at
// the standard half scale, reporting the usual experiment metrics.
func BenchmarkWaveSpeed(b *testing.B) {
	runExperiment(b, "wave-speed", nil)
}

// internetScaleConfig is a 10⁵-switch chain with 128 host clusters
// spread evenly along it and 64 long-haul flows between neighboring
// clusters (~780 hops each). Trunk measurement is gated off — at this
// scale per-trunk queue series would dominate memory without telling us
// anything the access ports don't — so the run exercises pure
// forwarding physics across the full diameter.
func internetScaleConfig() core.Config {
	const nSw = 100_000
	const nHosts = 128
	g := topology.Chain(nSw)
	g.Hosts = make([]topology.HostSpec, nHosts)
	stride := nSw / nHosts
	for i := range g.Hosts {
		g.Hosts[i] = topology.HostSpec{Switch: i * stride}
	}
	cfg := core.Config{
		Topology:      &g,
		TrunkDelay:    time.Millisecond,
		Buffer:        20,
		Seed:          7,
		Warmup:        2 * time.Second,
		Duration:      30 * time.Second,
		MeasureTrunks: []int{},
		MeasureConns:  []int{},
	}
	for k := 0; k+1 < nHosts; k += 2 {
		cfg.Conns = append(cfg.Conns, core.ConnSpec{SrcHost: k, DstHost: k + 1, Start: -1})
	}
	return cfg
}

// BenchmarkInternetScale builds and runs the 10⁵-switch network to
// completion. bytes/switch is the resident cost of the whole built
// simulation (compiled routes, switch tables, ports) per switch,
// measured once off the clock. The shards legs force the network
// through the region runner; events/run must come out identical (the
// sharding identity contract), while their sim-events/s is a
// host-dependent scaling number like BenchmarkShardScaling's.
func BenchmarkInternetScale(b *testing.B) {
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			cfg := internetScaleConfig()
			cfg.Shards = k

			base := liveHeap()
			s := core.Build(cfg)
			resident := liveHeap() - base
			runtime.KeepAlive(s)
			if resident < 0 {
				resident = 0
			}
			s.Finish() // off the clock: the resident probe's run completes

			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			var events uint64
			for i := 0; i < b.N; i++ {
				events = core.Run(cfg).Events
			}
			b.StopTimer()
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "sim-events/s")
			b.ReportMetric(float64(events), "events/run")
			b.ReportMetric(float64(resident)/float64(cfg.Topology.Switches), "bytes/switch")
		})
	}
}

// flowScaleConfig packs nConns one-hop flows onto a 64-switch chain:
// the flow-count axis with the topology held small. Per-connection
// measurement is gated off, so what remains per flow is exactly the
// protocol state (tcp.Sender/Receiver) plus its slot in the result
// containers — the footprint the compact-state work minimizes.
func flowScaleConfig(nConns int) core.Config {
	g := topology.Chain(64)
	cfg := core.Config{
		Topology:      &g,
		TrunkDelay:    time.Millisecond,
		Buffer:        20,
		Seed:          7,
		Warmup:        2 * time.Second,
		Duration:      8 * time.Second,
		MeasureTrunks: []int{},
		MeasureConns:  []int{},
	}
	for k := 0; k < nConns; k++ {
		t := k % 63
		cfg.Conns = append(cfg.Conns, core.ConnSpec{SrcHost: t, DstHost: t + 1, Start: -1})
	}
	return cfg
}

// BenchmarkFlowScale runs 10⁴ and 10⁵ concurrent connections to
// completion, serially and through the region runner (the /shards=4 leg
// partitions the 64-switch chain; events/run must be identical — the
// sharding identity contract). bytes/conn is the resident cost of the
// built simulation per connection (protocol state dominates; the
// 64-switch fabric is noise at these counts), measured once off the
// clock.
func BenchmarkFlowScale(b *testing.B) {
	for _, leg := range []struct{ conns, shards int }{
		{10_000, 1},
		{100_000, 1},
		{100_000, 4},
	} {
		n := leg.conns
		b.Run(fmt.Sprintf("conns=%d/shards=%d", n, leg.shards), func(b *testing.B) {
			cfg := flowScaleConfig(n)
			cfg.Shards = leg.shards

			base := liveHeap()
			s := core.Build(cfg)
			resident := liveHeap() - base
			runtime.KeepAlive(s)
			if resident < 0 {
				resident = 0
			}
			s.Finish()

			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			var events uint64
			for i := 0; i < b.N; i++ {
				events = core.Run(cfg).Events
			}
			b.StopTimer()
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "sim-events/s")
			b.ReportMetric(float64(events), "events/run")
			b.ReportMetric(float64(resident)/float64(n), "bytes/conn")
		})
	}
}

// BenchmarkIncrementalRecompile times a one-link routing update against
// the from-scratch recompile it replaces, on a 4096-switch chain and a
// 4096-switch scale-free graph. The chain leg is the bridge fast path:
// every chain link is a bridge, so a finite weight change moves no
// routes and ApplyLinkChange is O(1) after an amortized bridge sweep.
// The ba leg re-rates the last link added by preferential attachment —
// a peripheral non-bridge edge — so endpoint probes select the columns
// that actually route through it and only those recompute. The late
// node splits its traffic across its two attachments, so roughly half
// the columns are affected and the speedup tracks the probe bound
// dests/affected (~2x): the honest worst case for a link an endpoint
// leans on, against the chain's 10^4x bridge fast path. "speedup" is
// the ratio of a full RecomputeRoutes (timed off the clock) to one
// incremental update; the chain leg's target in docs/BENCH_pr10.json
// is >= 100x.
func BenchmarkIncrementalRecompile(b *testing.B) {
	cases := []struct {
		name  string
		graph func() topology.Graph
		link  int // -1 selects the last link
	}{
		{"chain=4096", func() topology.Graph { return topology.Chain(4096) }, 2048},
		{"ba=4096", func() topology.Graph { return topology.BarabasiAlbert(4096, 2, 7) }, -1},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			g := tc.graph()
			def := topology.Defaults{
				Bandwidth: core.DefaultTrunkBandwidth,
				Delay:     10 * time.Millisecond,
				Buffer:    20,
				DataSize:  core.DefaultDataSize,
			}
			c, err := g.Compile(def)
			if err != nil {
				b.Fatal(err)
			}
			li := tc.link
			if li < 0 {
				li = len(c.Links) - 1
			}
			wOrig := c.Weight(li)
			wAlt := wOrig + 5*time.Millisecond

			// Full-recompile reference, off the clock.
			const fullReps = 3
			t0 := time.Now()
			for i := 0; i < fullReps; i++ {
				if err := c.RecomputeRoutes(); err != nil {
					b.Fatal(err)
				}
			}
			fullNs := float64(time.Since(t0).Nanoseconds()) / fullReps

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Alternate between two weights so every call does real
				// work instead of short-circuiting as a no-op.
				w := wAlt
				if i%2 == 1 {
					w = wOrig
				}
				if _, err := c.ApplyLinkChange(li, w); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			incNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(fullNs/incNs, "speedup")
			b.ReportMetric(fullNs/1e6, "full-recompile-ms")
		})
	}
}

// millionNodeConfig is the 10⁶-switch regime: a million-switch chain
// with 128 host clusters spread evenly along it and 64 flows between
// neighboring clusters. All per-trunk and per-conn measurement is gated
// off; the trunk delay is 1 ms, so a cluster-to-cluster path is ~7.8 s
// one way and the run sees a few slow-start windows end to end.
func millionNodeConfig() core.Config {
	const nSw = 1_000_000
	const nHosts = 128
	g := topology.Chain(nSw)
	g.Hosts = make([]topology.HostSpec, nHosts)
	stride := nSw / nHosts
	for i := range g.Hosts {
		g.Hosts[i] = topology.HostSpec{Switch: i * stride}
	}
	cfg := core.Config{
		Topology:      &g,
		TrunkDelay:    time.Millisecond,
		Buffer:        20,
		Seed:          7,
		Warmup:        2 * time.Second,
		Duration:      25 * time.Second,
		MeasureTrunks: []int{},
		MeasureConns:  []int{},
	}
	for k := 0; k+1 < nHosts; k += 2 {
		cfg.Conns = append(cfg.Conns, core.ConnSpec{SrcHost: k, DstHost: k + 1, Start: -1})
	}
	return cfg
}

// BenchmarkMillionNode builds, routes, and runs the million-switch
// network to completion. route-bytes/switch is the resident cost of the
// compiled forwarding state alone (interned rows + per-switch row ids),
// measured on a separate compile off the clock; bytes/switch is the
// whole built simulation (ports, switches, routes) per switch;
// distinct-rows counts the interned row pool — the column-dedup win:
// topologically identical switches share one row, so a million-switch
// chain keeps a few hundred distinct rows.
func BenchmarkMillionNode(b *testing.B) {
	cfg := millionNodeConfig()

	// Route-state probe, off the clock.
	topo, err := cfg.CompileTopology()
	if err != nil {
		b.Fatal(err)
	}
	nSw := cfg.Topology.Switches
	routeBytes := topo.RouteBytes()
	rows := topo.DistinctRows()
	topo = nil

	base := liveHeap()
	s := core.Build(cfg)
	resident := liveHeap() - base
	runtime.KeepAlive(s)
	if resident < 0 {
		resident = 0
	}
	s.Finish()

	b.ReportAllocs()
	runtime.GC()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		events = core.Run(cfg).Events
	}
	b.StopTimer()
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "sim-events/s")
	b.ReportMetric(float64(events), "events/run")
	b.ReportMetric(float64(resident)/float64(nSw), "bytes/switch")
	b.ReportMetric(float64(routeBytes)/float64(nSw), "route-bytes/switch")
	b.ReportMetric(float64(rows), "distinct-rows")
}

// TestLargeChainSmoke is the CI large-topology leg: parse chain:2048
// through the public facade, build it, and run the end-to-end flow pair
// to completion — race detector off, wall-clock bounded by the CI step
// timeout. Gated behind TAHOEDYN_LARGE_SMOKE so the tier-1 suite stays
// fast on developer machines.
func TestLargeChainSmoke(t *testing.T) {
	if os.Getenv("TAHOEDYN_LARGE_SMOKE") == "" {
		t.Skip("set TAHOEDYN_LARGE_SMOKE=1 to run the large-topology smoke leg")
	}
	g, conns, err := ParseTopoSpec("chain:2048")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Topology:   g,
		TrunkDelay: time.Millisecond,
		Buffer:     20,
		Conns:      conns,
		Seed:       7,
		Warmup:     2 * time.Second,
		Duration:   12 * time.Second,
	}
	res := Run(cfg)
	if res.Events == 0 {
		t.Fatal("large chain ran no events")
	}
	for k := range conns {
		if res.SenderStats[k].DataSent == 0 {
			t.Fatalf("conn %d sent nothing across the 2048-switch chain", k)
		}
	}
}

// TestLargeBASmoke is the scale-free companion to the chain smoke: a
// 50 000-switch Barabási–Albert graph (ba:50000:2:1) with one mid-run
// link event, exercising the build-time event precompute
// (ApplyLinkChange on a clone, rebuilt tables scheduled at T) at a
// scale the tier-1 suite never reaches. Hosts are placed sparsely — 16
// clusters spread over the switch ID range — because route compilation
// is one Dijkstra per host-bearing switch: the full one-host-per-switch
// default would be 50 000 columns and blow the CI step timeout, while
// the sparse placement is the documented big-run pattern
// (BenchmarkInternetScale, BenchmarkMillionNode). The event is a
// bandwidth step, not a down: BA links can be bridges, and a bandwidth
// change re-routes without ever disconnecting. Gated like the chain
// leg.
func TestLargeBASmoke(t *testing.T) {
	if os.Getenv("TAHOEDYN_LARGE_SMOKE") == "" {
		t.Skip("set TAHOEDYN_LARGE_SMOKE=1 to run the large-topology smoke leg")
	}
	spec, _, err := ParseTopoSpec("ba:50000:2:1")
	if err != nil {
		t.Fatal(err)
	}
	g := *spec
	const nHosts = 16
	g.Hosts = make([]topology.HostSpec, nHosts)
	stride := g.Switches / nHosts
	for i := range g.Hosts {
		g.Hosts[i] = topology.HostSpec{Switch: i * stride}
	}
	cfg := Config{
		Topology:   &g,
		TrunkDelay: time.Millisecond,
		Buffer:     20,
		Seed:       7,
		Warmup:     2 * time.Second,
		Duration:   12 * time.Second,
		Events: []LinkEvent{
			{T: 6 * time.Second, Link: 0, Bandwidth: 25_000},
		},
	}
	for k := 0; k+1 < nHosts; k += 2 {
		cfg.Conns = append(cfg.Conns, ConnSpec{SrcHost: k, DstHost: k + 1, Start: -1})
	}
	res := Run(cfg)
	if res.Events == 0 {
		t.Fatal("large BA graph ran no events")
	}
	for k := range cfg.Conns {
		if res.SenderStats[k].DataSent == 0 {
			t.Fatalf("conn %d sent nothing across the 50000-switch BA graph", k)
		}
	}
}
