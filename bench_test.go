package tahoedyn

// The benchmark harness: one benchmark per paper figure/claim, each
// regenerating the experiment at reduced scale and reporting the
// headline numbers as benchmark metrics (so `go test -bench` prints the
// same rows the paper reports), plus microbenchmarks of the simulation
// engine itself.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"tahoedyn/internal/core"
	"tahoedyn/internal/experiment"
	"tahoedyn/internal/obs"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

// benchOpts shrinks experiment durations so a bench iteration stays
// around a hundred milliseconds while preserving the dynamics. (The
// full-scale acceptance bands are asserted by the test suite; at half
// scale a band can occasionally miss, which the bands-passed metric
// surfaces without failing the bench.)
var benchOpts = experiment.Options{Scale: 0.5}

// runExperiment is the common bench body: run the experiment b.N times
// and report its metrics from the last outcome.
func runExperiment(b *testing.B, name string, metrics func(*experiment.Outcome, *testing.B)) {
	b.Helper()
	b.ReportAllocs()
	def, ok := experiment.Find(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	var out *experiment.Outcome
	// One untimed warm-up run, then settle the garbage: recordings run
	// every benchmark back to back at -benchtime 1x, and without this a
	// neighbor's GC debt lands inside our timed region and the timed run
	// pays one-time pool fills. A single GC keeps sync.Pool contents
	// reachable (victim cache), so the run arena stays warm.
	out = def.Run(benchOpts)
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = def.Run(benchOpts)
	}
	if out.Result != nil {
		b.ReportMetric(float64(out.Result.Events)/b.Elapsed().Seconds()*float64(b.N),
			"sim-events/s")
	}
	passed := 0.0
	if out.Passed() {
		passed = 1
	}
	b.ReportMetric(passed, "bands-passed")
	if metrics != nil {
		metrics(out, b)
	}
}

func reportUtil(out *experiment.Outcome, b *testing.B) {
	if out.Result != nil {
		b.ReportMetric(out.Result.UtilForward()*100, "util-fwd-%")
		b.ReportMetric(out.Result.UtilReverse()*100, "util-rev-%")
	}
}

func BenchmarkFig2OneWay(b *testing.B) {
	runExperiment(b, "fig2-oneway", reportUtil)
}

func BenchmarkOneWaySmallPipe(b *testing.B) {
	runExperiment(b, "oneway-smallpipe", reportUtil)
}

func BenchmarkOneWayBufferScaling(b *testing.B) {
	runExperiment(b, "oneway-buffers", nil)
}

func BenchmarkFig3TenConns(b *testing.B) {
	runExperiment(b, "fig3-tenconns", reportUtil)
}

func BenchmarkFig45OutOfPhase(b *testing.B) {
	runExperiment(b, "fig4-5", reportUtil)
}

func BenchmarkFig67InPhase(b *testing.B) {
	runExperiment(b, "fig6-7", reportUtil)
}

func BenchmarkFig8FixedWindow(b *testing.B) {
	runExperiment(b, "fig8-fixed", func(out *experiment.Outcome, b *testing.B) {
		reportUtil(out, b)
		r := out.Result
		b.ReportMetric(r.Q1().Max(r.MeasureFrom, r.MeasureTo), "q1-max-pkts")
		b.ReportMetric(r.Q2().Max(r.MeasureFrom, r.MeasureTo), "q2-max-pkts")
	})
}

func BenchmarkFig9FixedWindow(b *testing.B) {
	runExperiment(b, "fig9-fixed", reportUtil)
}

func BenchmarkZeroACKConjecture(b *testing.B) {
	runExperiment(b, "zeroack-conjecture", nil)
}

func BenchmarkACKCompression(b *testing.B) {
	runExperiment(b, "ack-compression", nil)
}

func BenchmarkDelayedACK(b *testing.B) {
	runExperiment(b, "delayed-ack", nil)
}

func BenchmarkFourSwitch(b *testing.B) {
	runExperiment(b, "four-switch", nil)
}

func BenchmarkPacingAblation(b *testing.B) {
	runExperiment(b, "pacing-ablation", nil)
}

func BenchmarkRenoTwoWay(b *testing.B) {
	runExperiment(b, "reno", nil)
}

func BenchmarkRandomDrop(b *testing.B) {
	runExperiment(b, "random-drop", nil)
}

func BenchmarkUnequalRTT(b *testing.B) {
	runExperiment(b, "unequal-rtt", nil)
}

func BenchmarkParkingLot(b *testing.B) {
	runExperiment(b, "parking-lot", nil)
}

func BenchmarkCongestionWave(b *testing.B) {
	runExperiment(b, "congestion-wave", nil)
}

// BenchmarkClusteringMetric measures the clustering analysis over a
// realistic departure log (E13).
func BenchmarkClusteringMetric(b *testing.B) {
	cfg := Dumbbell(time.Second, 20)
	for i := 0; i < 3; i++ {
		cfg.Conns = append(cfg.Conns, ConnSpec{SrcHost: 0, DstHost: 1, Start: -1})
	}
	cfg.Warmup = 100 * time.Second
	cfg.Duration = 400 * time.Second
	res := Run(cfg)
	deps := res.TrunkDeps[0][0]
	b.ReportAllocs()
	b.ResetTimer()
	var c float64
	for i := 0; i < b.N; i++ {
		c = Clustering(deps)
	}
	b.ReportMetric(c, "clustering")
}

// BenchmarkEngine measures raw event throughput of the discrete-event
// core: schedule-and-run of pre-seeded timer chains.
func BenchmarkEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 1000 {
				eng.Schedule(time.Millisecond, tick)
			}
		}
		eng.Schedule(time.Millisecond, tick)
		eng.Run()
	}
}

// BenchmarkEngineScheduleCancel measures the retransmit-timer pattern:
// every scheduled event is canceled before it fires, so the free list
// should absorb all allocation and Cancel's remove-by-index should keep
// the heap at its steady-state size.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := eng.Schedule(time.Second, func() {})
		ev.Cancel()
	}
	if eng.Pending() != 0 {
		b.Fatalf("heap leaked %d events", eng.Pending())
	}
}

// BenchmarkEngineDepth measures schedule+fire cost as a function of how
// many events are already pending, exercising siftUp/siftDown across
// heap depths.
func BenchmarkEngineDepth(b *testing.B) {
	for _, depth := range []int{64, 1024, 16384, 262144} {
		b.Run(fmt.Sprintf("pending=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			eng := sim.New()
			// Far-future ballast keeps the heap at the target depth.
			for i := 0; i < depth; i++ {
				eng.Schedule(time.Hour+time.Duration(i)*time.Millisecond, func() {})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Schedule(time.Microsecond, func() {})
				eng.Step()
			}
		})
	}
}

// BenchmarkScenarioThroughput measures end-to-end simulation speed in
// simulated-seconds per wall-second for the standard two-way scenario.
func BenchmarkScenarioThroughput(b *testing.B) {
	cfg := core.DumbbellConfig(10*time.Millisecond, 20)
	cfg.Conns = []core.ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 10 * time.Second
	cfg.Duration = 300 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res := core.Run(cfg)
		events = res.Events
	}
	simSecs := cfg.Duration.Seconds() * float64(b.N)
	b.ReportMetric(simSecs/b.Elapsed().Seconds(), "sim-s/wall-s")
	b.ReportMetric(float64(events), "events/run")
}

// steadyStateConfig is the standard two-way scenario set up for stepped
// execution: a short warmup and a far-out Duration so trace containers
// are presized well past anything the bench steps into.
func steadyStateConfig() core.Config {
	cfg := core.DumbbellConfig(10*time.Millisecond, 20)
	cfg.Conns = []core.ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 10 * time.Second
	cfg.Duration = time.Hour
	return cfg
}

// BenchmarkScenarioSteadyStateAllocs measures per-simulated-second heap
// allocations once the two-way scenario is past slow start: the packet
// pool and the engine free list should absorb the entire per-packet
// path, so allocs/op reads ~0 at real benchtime. pool-misses counts
// packets the pool had to allocate over the whole run (the transient
// working set, not a per-iteration cost).
func BenchmarkScenarioSteadyStateAllocs(b *testing.B) {
	cfg := steadyStateConfig()
	s := core.Build(cfg)
	s.RunUntil(cfg.Warmup)
	b.ReportAllocs()
	runtime.GC() // collect build+warmup garbage off the clock
	b.ResetTimer()
	t := cfg.Warmup
	for i := 0; i < b.N; i++ {
		t += time.Second
		s.RunUntil(t)
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Pool().Allocs()), "pool-misses")
	b.ReportMetric(float64(s.Pool().Recycled())/float64(b.N), "recycled/op")
}

// BenchmarkScenarioSteadyState is the headline engine number: steady-
// state event throughput of the warmed two-way scenario, one simulated
// second per op, reported as sim-events/s. Sub-benchmarks pin both
// schedulers so heap-vs-wheel is one `go test -bench` away; the
// recorded docs/BENCH_pr*.json snapshots track the wheel number.
func BenchmarkScenarioSteadyState(b *testing.B) {
	for _, kind := range []sim.SchedKind{sim.SchedWheel, sim.SchedHeap} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := steadyStateConfig()
			cfg.Sched = kind
			s := core.Build(cfg)
			s.RunUntil(cfg.Warmup)
			var events uint64
			base := s.Events()
			b.ReportAllocs()
			runtime.GC() // collect build+warmup garbage off the clock
			b.ResetTimer()
			t := cfg.Warmup
			for i := 0; i < b.N; i++ {
				if t+time.Second > cfg.Duration {
					// Long benchtimes outrun the scenario; rebuild and
					// rewarm off the clock.
					b.StopTimer()
					events += s.Events() - base
					s = core.Build(cfg)
					s.RunUntil(cfg.Warmup)
					base = s.Events()
					t = cfg.Warmup
					b.StartTimer()
				}
				t += time.Second
				s.RunUntil(t)
			}
			b.StopTimer()
			events += s.Events() - base
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "sim-events/s")
		})
	}
}

// TestSteadyStateAllocs is the hard assertion behind the benchmark:
// advancing the warmed scenario must not allocate beyond stray amortized
// container growth. The obs variants pin the zero-overhead contract —
// a nil Config.Obs, an empty (all-disabled) Options, and even live
// metrics+progress instruments must keep the hot path allocation-free.
// The sched variants pin it for both schedulers explicitly, and the
// arena variant for a simulation built from a warm arena: its second
// back-to-back run must be exactly 0 allocs per simulated second.
func TestSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		name  string
		sched sim.SchedKind
		obs   func() *obs.Options
		arena bool
		want  float64 // max allocs per stepped sim-second
	}{
		{name: "obs-nil", want: 1},
		{name: "obs-empty-options", obs: func() *obs.Options { return &obs.Options{} }, want: 1},
		{name: "obs-metrics-and-progress", obs: func() *obs.Options {
			return &obs.Options{
				Metrics:  true,
				Progress: &obs.Progress{Every: 10 * time.Second, Fn: func(obs.Snapshot) {}},
			}
		}, want: 1},
		{name: "sched-wheel", sched: sim.SchedWheel, want: 1},
		{name: "sched-heap", sched: sim.SchedHeap, want: 1},
		{name: "arena-reused", sched: sim.SchedWheel, arena: true, want: 0},
		{name: "arena-reused-heap", sched: sim.SchedHeap, arena: true, want: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := steadyStateConfig()
			cfg.Sched = tc.sched
			if tc.obs != nil {
				cfg.Obs = tc.obs()
			}
			var s *core.Sim
			if tc.arena {
				// A first full run warms the arena — engine storage,
				// packet free list — so the second, reused build's steady
				// state has nothing left to allocate.
				a := core.NewArena()
				warm := cfg
				warm.Duration = 40 * time.Second
				a.Run(warm)
				s = a.Build(cfg)
			} else {
				s = core.Build(cfg)
			}
			// Warm well past slow start so the pool and free lists are
			// populated.
			s.RunUntil(30 * time.Second)
			now := 30 * time.Second
			allocs := testing.AllocsPerRun(50, func() {
				now += time.Second
				s.RunUntil(now)
			})
			if allocs > tc.want {
				t.Errorf("steady-state simulation allocates %.2f/sim-second, want <= %v", allocs, tc.want)
			}
		})
	}
}

// BenchmarkTahoeSender isolates the TCP state machine: a sender and
// receiver wired back-to-back through zero-delay function calls.
func BenchmarkTahoeSender(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		cfg := core.DumbbellConfig(10*time.Millisecond, 20)
		cfg.Conns = []core.ConnSpec{{SrcHost: 0, DstHost: 1, Start: 0}}
		cfg.Warmup = time.Second
		cfg.Duration = 30 * time.Second
		core.Run(cfg)
		_ = eng
	}
}

// Sanity checks so `go test` at the repository root also exercises the
// facade itself.

func TestFacadeRunAndAnalyze(t *testing.T) {
	cfg := Dumbbell(10*time.Millisecond, 20)
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 50 * time.Second
	cfg.Duration = 250 * time.Second
	res := Run(cfg)
	if res.UtilForward() <= 0 || res.UtilForward() > 1 {
		t.Fatalf("utilization out of range: %v", res.UtilForward())
	}
	mode, _ := Phase(res.Cwnd[0], res.Cwnd[1], cfg.Warmup, cfg.Duration, time.Second)
	if mode != PhaseOut && mode != PhaseIn && mode != PhaseMixed {
		t.Fatalf("unexpected phase mode %v", mode)
	}
	if len(res.Drops) == 0 {
		t.Fatal("expected drops in the congested scenario")
	}
	for _, d := range res.Drops {
		if d.Kind == packet.Ack {
			t.Fatal("an ACK was dropped")
		}
	}
	eps := Epochs(res.Drops, 2*time.Second)
	if len(eps) == 0 {
		t.Fatal("no congestion epochs detected")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	defs := Experiments()
	if len(defs) != 25 {
		t.Fatalf("registry has %d experiments, want 25", len(defs))
	}
	if _, err := Experiment("nope", ExpOptions{}); err == nil {
		t.Fatal("unknown experiment did not error")
	}
	out := MustExperiment("oneway-smallpipe", ExpOptions{Scale: 0.2})
	if out.ID != "oneway-smallpipe" {
		t.Fatalf("outcome ID = %q", out.ID)
	}
}

func BenchmarkFairQueueing(b *testing.B) {
	runExperiment(b, "fair-queueing", nil)
}

func BenchmarkIncreaseRule(b *testing.B) {
	runExperiment(b, "increase-rule", nil)
}

func BenchmarkModeBoundary(b *testing.B) {
	runExperiment(b, "mode-boundary", nil)
}

// BenchmarkRedTwoWay is the red-sync experiment: two-way traffic
// through RED gateways vs drop-tail, the cost of the probabilistic
// discipline on the hot path included.
func BenchmarkRedTwoWay(b *testing.B) {
	runExperiment(b, "red-sync", nil)
}

func BenchmarkCrossTraffic(b *testing.B) {
	runExperiment(b, "cross-traffic", nil)
}

// BenchmarkTraceDrivenLink runs the two-way scenario over a trunk that
// replays a cellular-like rate schedule, measuring the per-departure
// cost of the time-varying serialization rate.
func BenchmarkTraceDrivenLink(b *testing.B) {
	rt, err := ParseRateTrace(strings.NewReader(
		"500ms 50000\n250ms 18000\n750ms 32000\n500ms 64000\n"))
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DumbbellConfig(10*time.Millisecond, 20)
	cfg.Conns = []core.ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Behavior = &BehaviorSpec{Trace: rt}
	cfg.Warmup = 10 * time.Second
	cfg.Duration = 300 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res := core.Run(cfg)
		events = res.Events
	}
	simSecs := cfg.Duration.Seconds() * float64(b.N)
	b.ReportMetric(simSecs/b.Elapsed().Seconds(), "sim-s/wall-s")
	b.ReportMetric(float64(events), "events/run")
}

// TestShardedSteadyStateAllocs pins the sharded runner's steady-state
// allocation contract: once the region pools, edge buffers, inbox, and
// pre-built round workers are warm, advancing the simulation allocates
// nothing — not per packet, and not per synchronization round (this
// stepped sim-second spans 100 rounds of the 10 ms lookahead).
func TestShardedSteadyStateAllocs(t *testing.T) {
	cfg := steadyStateConfig()
	cfg.Shards = 2
	a := core.NewArena()
	warm := cfg
	warm.Duration = 40 * time.Second
	a.Run(warm)
	s := a.Build(cfg)
	s.RunUntil(30 * time.Second)
	now := 30 * time.Second
	allocs := testing.AllocsPerRun(50, func() {
		now += time.Second
		s.RunUntil(now)
	})
	if allocs > 1 {
		t.Errorf("sharded steady-state simulation allocates %.2f/sim-second, want <= 1", allocs)
	}
}

// shardScalingConfig is the sharding headline workload: a 1024-switch
// chain (1023 trunks) carrying 10^4 neighbor-local connections — 2x the
// ISSUE floor of 10^3 nodes, and local flows so only the partition's
// cut trunks carry cross-region traffic. Trunks run at 4x the paper
// rate to keep every link busy without making one simulated second
// unaffordable at -benchtime 1x.
func shardScalingConfig() core.Config {
	g := ChainTopology(1024)
	cfg := core.Config{
		Topology:       &g,
		TrunkBandwidth: 4 * core.DefaultTrunkBandwidth,
		TrunkDelay:     10 * time.Millisecond,
		Buffer:         core.DefaultBuffer,
		Seed:           1,
		Warmup:         2 * time.Second,
		// 10 steppable sim-seconds past warmup. Duration feeds the
		// trace-reserve estimate, and with 2046 trunk ports a long
		// horizon preallocates gigabytes per Build — enough that four
		// back-to-back sub-benchmark builds drown a single-core host
		// in GC work. Keep it short; the bench rebuilds on overrun.
		Duration: 12 * time.Second,
	}
	for k := 0; k < 5000; k++ {
		t := k % 1023
		cfg.Conns = append(cfg.Conns,
			core.ConnSpec{SrcHost: t, DstHost: t + 1, Start: -1},
			core.ConnSpec{SrcHost: t + 1, DstHost: t, Start: -1},
		)
	}
	return cfg
}

// BenchmarkShardScaling is the sharded-run scaling curve: steady-state
// event throughput of the large-chain workload at 1/2/4/8 shards, one
// simulated second per op. events/run is deterministic and identical at
// every shard count (the identity contract); sim-events/s is the
// wall-clock headline. Its scaling has two sources: true parallelism
// (one core per region, when the machine has them) and scheduler
// locality — a region engine holds 1/k of the event population, so its
// timing-wheel cursor and cache footprint shrink with k. The reference
// recordings come from single-core hosts (see README "Sharded runs"),
// where the curve shows only the locality term.
func BenchmarkShardScaling(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			cfg := shardScalingConfig()
			cfg.Shards = k
			s := core.Build(cfg)
			s.RunUntil(cfg.Warmup)
			var events uint64
			base := s.Events()
			runtime.GC() // collect build+warmup garbage off the clock
			b.ResetTimer()
			t := cfg.Warmup
			for i := 0; i < b.N; i++ {
				if t+time.Second > cfg.Duration {
					b.StopTimer()
					events += s.Events() - base
					s = core.Build(cfg)
					s.RunUntil(cfg.Warmup)
					base = s.Events()
					t = cfg.Warmup
					b.StartTimer()
				}
				t += time.Second
				s.RunUntil(t)
			}
			b.StopTimer()
			events += s.Events() - base
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "sim-events/s")
			b.ReportMetric(float64(events)/float64(b.N), "events/run")
		})
	}
}
