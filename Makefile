GO ?= go

.PHONY: build test race vet check bench bench-shards bench-baseline bench-record bench-compare trace-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the parallel sweep runner and every test that fans runs
# across workers under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the full verify loop: what CI (and the pre-commit habit)
# should run.
check: vet build test race

bench:
	$(GO) test -bench . -benchtime 1x -benchmem .

# bench-shards runs just the sharded scaling curve (1/2/4/8 regions on
# the 1024-switch chain). events/run must print identically on every
# leg — that is the determinism contract; sim-events/s depends on the
# machine (see README "Sharded runs").
bench-shards:
	$(GO) test -run xxx -bench BenchmarkShardScaling -benchtime 1x -benchmem .

# trace-demo streams two seconds of packet lifecycle events from the
# paper's fig4-5 configuration as JSONL — a quick look at what
# `tahoe-trace -follow` (DESIGN.md §10) produces.
trace-demo:
	$(GO) run ./cmd/tahoe-trace -follow -tau 10ms -at 300s -span 2s

# bench-baseline regenerates docs/BENCH_baseline.json; see
# docs/BENCH_baseline.md for how to read and compare it.
bench-baseline:
	$(GO) test -run xxx -bench . -benchtime 1x -count 3 -json . > docs/BENCH_baseline.json

# bench-record captures a recording for the current tree, e.g.
#   make bench-record OUT=docs/BENCH_pr5.json
# Three one-iteration samples per benchmark: paper metrics are
# deterministic (identical every sample), and benchcmp.sh takes the best
# wall-clock sample so recordings survive a noisy box.
OUT ?= docs/BENCH_pr5.json
bench-record:
	$(GO) test -run xxx -bench . -benchtime 1x -count 3 -json . > $(OUT)

# bench-compare diffs two recordings: exit 1 if any paper metric
# (util-*, bands-passed, events/run) changed, warnings for allocs/op
# regressions. Override OLD/NEW to compare arbitrary recordings.
OLD ?= docs/BENCH_baseline.json
NEW ?= docs/BENCH_pr2.json
bench-compare:
	scripts/benchcmp.sh $(OLD) $(NEW)
