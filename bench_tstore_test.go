package tahoedyn

// Trace-store benchmarks: ingest throughput (events/s through the
// columnar chunk encoder), full-scan throughput (events/s decoded), and
// the chunk-skip ratio of a narrow time-windowed query. These are the
// PR-8 rows of the benchmark trajectory (docs/BENCH_pr8.json).

import (
	"bytes"
	"io"
	"testing"
	"time"

	"tahoedyn/internal/obs"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/tstore"
)

// benchTraceBatch builds one deterministic batch of store events shaped
// like real port traffic (mixed types, a handful of locations and
// connections, mostly-ascending timestamps).
func benchTraceBatch(n int, start time.Duration) ([]string, []obs.Event) {
	locs := []string{"sw0->sw1:data", "sw1->sw0:ack", "sw1->sw2:data", "h0:tcp"}
	events := make([]obs.Event, n)
	t := start
	for i := range events {
		t += time.Duration(50+i%17) * time.Microsecond
		typ := obs.Enqueue
		switch i % 5 {
		case 1:
			typ = obs.Dequeue
		case 2:
			typ = obs.Transmit
		case 3:
			typ = obs.Deliver
		case 4:
			if i%35 == 4 {
				typ = obs.Drop
			}
		}
		events[i] = obs.Event{
			T:    t,
			Type: typ,
			Loc:  obs.Loc(i % len(locs)),
			Conn: int32(1 + i%3),
			Kind: packet.Data,
			ID:   uint64(i),
			Seq:  int32(i / 3),
			Size: 576,
			Val:  float64(i % 24),
		}
	}
	return locs, events
}

// BenchmarkTraceStoreIngest measures the columnar chunk encoder: events
// per second from an obs batch stream into an io.Writer.
func BenchmarkTraceStoreIngest(b *testing.B) {
	const batch = 1 << 16
	const batches = 16 // ~1M events per iteration
	locs, events := benchTraceBatch(batch, 0)
	b.ReportAllocs()
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		w := tstore.NewWriter(io.Discard, tstore.WriterOptions{})
		if err := w.Begin(); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < batches; j++ {
			if err := w.Events(locs, events); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		total = w.TotalEvents()
	}
	b.StopTimer()
	evs := float64(total) * float64(b.N)
	b.ReportMetric(evs/b.Elapsed().Seconds(), "events/s")
}

// buildBenchStore materializes an in-memory store for the scan benches.
func buildBenchStore(b *testing.B, nEvents int) *tstore.Store {
	b.Helper()
	var buf bytes.Buffer
	w := tstore.NewWriter(&buf, tstore.WriterOptions{})
	if err := w.Begin(); err != nil {
		b.Fatal(err)
	}
	const batch = 1 << 16
	for off := 0; off < nEvents; off += batch {
		n := batch
		if nEvents-off < n {
			n = nEvents - off
		}
		locs, events := benchTraceBatch(n, time.Duration(off)*58*time.Microsecond)
		if err := w.Events(locs, events); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	s, err := tstore.NewStore(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(buf.Len())/float64(nEvents), "B/event")
	return s
}

// BenchmarkTraceStoreScan measures full-store decode throughput.
func BenchmarkTraceStoreScan(b *testing.B) {
	const nEvents = 1 << 20
	s := buildBenchStore(b, nEvents)
	b.ReportAllocs()
	b.ResetTimer()
	var n uint64
	for i := 0; i < b.N; i++ {
		n = 0
		err := s.Scan(tstore.Query{}, func(ev *obs.Event) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if n != nEvents {
		b.Fatalf("scanned %d events, want %d", n, nEvents)
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTraceStoreWindowQuery measures a narrow time-windowed count:
// the footer index should skip nearly every chunk.
func BenchmarkTraceStoreWindowQuery(b *testing.B) {
	const nEvents = 1 << 20
	s := buildBenchStore(b, nEvents)
	span := s.Chunks()[len(s.Chunks())-1].MaxT
	q := tstore.Query{From: span * 49 / 100, To: span * 50 / 100}
	b.ReportAllocs()
	b.ResetTimer()
	var scanned, skipped uint64
	for i := 0; i < b.N; i++ {
		scanned, skipped = 0, 0
		sk, err := s.ScanStats(q, func(ev *obs.Event) error {
			scanned++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		skipped = uint64(sk)
	}
	b.StopTimer()
	if scanned == 0 || skipped == 0 {
		b.Fatalf("window query scanned %d events, skipped %d chunks", scanned, skipped)
	}
	b.ReportMetric(float64(skipped)/float64(len(s.Chunks())), "chunk-skip-ratio")
	b.ReportMetric(float64(scanned)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
