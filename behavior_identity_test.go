package tahoedyn

// Determinism tests for the seeded queue/behavior/source surface: every
// stochastic draw (RED's probabilistic drops, stochastic impairments,
// on/off source periods) comes from a per-entity stream derived from
// Config.Seed and a partition-independent entity index, so a seeded run
// must be byte-identical at any shard count and under arena reuse.

import (
	"strings"
	"testing"
	"time"
)

// behaviorConfig builds a four-switch chain loaded with RED queues, a
// lossy jittered trunk, and non-TCP sources next to a two-way TCP pair
// — every seeded entity the new surface introduces, all in one run.
func behaviorConfig(t *testing.T) Config {
	t.Helper()
	g := ChainTopology(4)
	cfg := Dumbbell(10*time.Millisecond, 20)
	cfg.Topology = &g
	cfg.Seed = 7
	cfg.Queue = &QueueSpec{Policy: QueuePolicyRED, MinTh: 3, MaxTh: 10, MaxP: 0.1, Wq: 0.01}
	cfg.Behavior = &BehaviorSpec{Loss: 0.005, Jitter: 2 * time.Millisecond}
	// One link overrides both: a random-drop queue under a bursty
	// Gilbert-Elliott channel.
	cfg.LinkQueue = map[int]*QueueSpec{1: {Policy: QueuePolicyRandomDrop}}
	cfg.LinkBehavior = map[int]*BehaviorSpec{
		1: {GoodToBad: 0.002, BadToGood: 0.3, BadLoss: 0.3},
	}
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 3, Start: -1},
		{SrcHost: 3, DstHost: 0, Start: -1},
		{SrcHost: 1, DstHost: 2, Start: -1,
			Source: &SourceSpec{Kind: SourceCBR, Rate: 8_000}},
		{SrcHost: 2, DstHost: 1, Start: -1,
			Source: &SourceSpec{Kind: SourceOnOff, Rate: 16_000,
				OnMean: 500 * time.Millisecond, OffMean: 500 * time.Millisecond}},
	}
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 80 * time.Second
	return cfg
}

// TestSeededBehaviorShardIdentity pins the satellite contract: the
// seeded-behavior run is byte-identical at shards 1, 2, and 4.
func TestSeededBehaviorShardIdentity(t *testing.T) {
	cfg := behaviorConfig(t)
	serial := runShards(cfg, 1)
	if serial.Goodput[2] == 0 {
		t.Fatal("CBR source delivered nothing; the scenario is not exercising sources")
	}
	if len(serial.Drops) == 0 {
		t.Fatal("no drops; the scenario is not exercising RED")
	}
	for _, k := range []int{2, 4} {
		assertSameRun(t, serial, runShards(cfg, k))
	}
}

// TestSeededBehaviorArenaIdentity pins seeded-behavior determinism
// under arena reuse: the same config run back to back on one Arena
// (with an unrelated run in between) reproduces the cold run exactly.
func TestSeededBehaviorArenaIdentity(t *testing.T) {
	cfg := behaviorConfig(t)
	cold := Run(cfg)
	a := NewArena()
	first := a.Run(cfg)
	assertSameRun(t, cold, first)
	// Perturb the arena with a different shape, then return.
	other := Dumbbell(time.Second, 10)
	other.Conns = []ConnSpec{{SrcHost: 0, DstHost: 1, Start: -1}}
	other.Warmup, other.Duration = 5*time.Second, 20*time.Second
	a.Run(other)
	assertSameRun(t, cold, a.Run(cfg))
}

// TestSeededBehaviorSeedSensitivity double-checks the draws really are
// live: a different seed must change the line-loss pattern.
func TestSeededBehaviorSeedSensitivity(t *testing.T) {
	cfg := behaviorConfig(t)
	a := Run(cfg)
	cfg.Seed = 8
	b := Run(cfg)
	if a.Events == b.Events {
		t.Fatal("seed change left the run untouched; seeded streams are not live")
	}
}

// TestScenarioQueueBehaviorEndToEnd runs a scenario-file spelling of a
// seeded-behavior config through the facade parser and checks the same
// bytes come out at 1 and 2 shards.
func TestScenarioQueueBehaviorEndToEnd(t *testing.T) {
	j := `{
  "trunk_delay": "10ms",
  "buffer": 20,
  "queue": {"policy": "red", "min_th": 3, "max_th": 10, "max_p": 0.1, "wq": 0.01},
  "behavior": {"loss": 0.01, "jitter": "1ms"},
  "conns": [
    {"src": 0, "dst": 1},
    {"src": 1, "dst": 0},
    {"src": 0, "dst": 1, "source": {"kind": "cbr", "rate": 5000}}
  ],
  "seed": 3,
  "warmup": "10s",
  "duration": "40s"
}`
	cfg, err := ParseScenario(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	serial := runShards(cfg, 1)
	assertSameRun(t, serial, runShards(cfg, 2))
	if serial.Goodput[2] == 0 {
		t.Fatal("scenario-file CBR source delivered nothing")
	}
}
