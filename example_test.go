package tahoedyn_test

import (
	"context"
	"fmt"
	"time"

	"tahoedyn"
)

// ExampleRun builds the paper's Figure-1 dumbbell with one Tahoe
// connection in each direction and reports the headline observables.
// Runs are deterministic in the configuration, so the output is exact.
func ExampleRun() {
	cfg := tahoedyn.Dumbbell(10*time.Millisecond, 20)
	cfg.Conns = []tahoedyn.ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 100 * time.Second
	cfg.Duration = 400 * time.Second

	res := tahoedyn.Run(cfg)
	mode, _ := tahoedyn.Phase(res.Cwnd[0], res.Cwnd[1], cfg.Warmup, cfg.Duration, time.Second)
	fmt.Printf("utilization: %.0f%%\n", res.UtilForward()*100)
	fmt.Printf("window synchronization: %v\n", mode)
	fmt.Printf("ACKs dropped: %d\n", countAcks(res.Drops))
	// Output:
	// utilization: 70%
	// window synchronization: out-of-phase
	// ACKs dropped: 0
}

func countAcks(drops []tahoedyn.DropEvent) int {
	n := 0
	for _, d := range drops {
		if d.Kind != 0 { // packet.Ack
			n++
		}
	}
	return n
}

// ExampleExperiment reproduces Figure 8 and prints whether every
// paper-derived acceptance band passed.
func ExampleExperiment() {
	out, err := tahoedyn.Experiment("fig8-fixed", tahoedyn.ExpOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: passed=%v, %d metrics\n", out.ID, out.Passed(), len(out.Metrics))
	// Output:
	// fig8-fixed: passed=true, 8 metrics
}

// ExampleRunE is the error-returning entry point: invalid
// configurations come back as ordinary errors instead of panics, so a
// service embedding the simulator can validate untrusted input.
func ExampleRunE() {
	bad := tahoedyn.Dumbbell(10*time.Millisecond, 20)
	bad.Conns = []tahoedyn.ConnSpec{{SrcHost: 0, DstHost: 99, Start: -1}}
	if _, err := tahoedyn.RunE(bad); err != nil {
		fmt.Println("rejected:", err)
	}

	good := tahoedyn.Dumbbell(10*time.Millisecond, 20)
	good.Conns = []tahoedyn.ConnSpec{{SrcHost: 0, DstHost: 1, Start: -1}}
	good.Warmup = 50 * time.Second
	good.Duration = 200 * time.Second
	res, err := tahoedyn.RunE(good)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("utilization: %.0f%%\n", res.UtilForward()*100)
	// Output:
	// rejected: core: connection 0 host index out of range (src 0, dst 99, 2 hosts)
	// utilization: 100%
}

// ExampleRunContext runs a simulation under a context deadline. A
// canceled run returns the context's error and no Result; here the
// context stays live so the run completes normally.
func ExampleRunContext() {
	cfg := tahoedyn.Dumbbell(10*time.Millisecond, 20)
	cfg.Conns = []tahoedyn.ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 50 * time.Second
	cfg.Duration = 200 * time.Second

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := tahoedyn.RunContext(ctx, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("events: >0 %v, drops: >0 %v\n", res.Events > 0, len(res.Drops) > 0)
	// Output:
	// events: >0 true, drops: >0 true
}

// ExampleConfig_PipeSize shows the paper's pipe-size arithmetic: at
// τ = 1 s the 50 Kbps bottleneck holds 12.5 of the 500-byte packets.
func ExampleConfig_PipeSize() {
	cfg := tahoedyn.Dumbbell(time.Second, 20)
	fmt.Printf("P = %.1f packets, data tx = %v\n", cfg.PipeSize(), cfg.DataTxTime())
	// Output:
	// P = 12.5 packets, data tx = 80ms
}
