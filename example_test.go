package tahoedyn_test

import (
	"fmt"
	"time"

	"tahoedyn"
)

// ExampleRun builds the paper's Figure-1 dumbbell with one Tahoe
// connection in each direction and reports the headline observables.
// Runs are deterministic in the configuration, so the output is exact.
func ExampleRun() {
	cfg := tahoedyn.Dumbbell(10*time.Millisecond, 20)
	cfg.Conns = []tahoedyn.ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 100 * time.Second
	cfg.Duration = 400 * time.Second

	res := tahoedyn.Run(cfg)
	mode, _ := tahoedyn.Phase(res.Cwnd[0], res.Cwnd[1], cfg.Warmup, cfg.Duration, time.Second)
	fmt.Printf("utilization: %.0f%%\n", res.UtilForward()*100)
	fmt.Printf("window synchronization: %v\n", mode)
	fmt.Printf("ACKs dropped: %d\n", countAcks(res.Drops))
	// Output:
	// utilization: 70%
	// window synchronization: out-of-phase
	// ACKs dropped: 0
}

func countAcks(drops []tahoedyn.DropEvent) int {
	n := 0
	for _, d := range drops {
		if d.Kind != 0 { // packet.Ack
			n++
		}
	}
	return n
}

// ExampleExperiment reproduces Figure 8 and prints whether every
// paper-derived acceptance band passed.
func ExampleExperiment() {
	out, err := tahoedyn.Experiment("fig8-fixed", tahoedyn.ExpOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: passed=%v, %d metrics\n", out.ID, out.Passed(), len(out.Metrics))
	// Output:
	// fig8-fixed: passed=true, 8 metrics
}

// ExampleConfig_PipeSize shows the paper's pipe-size arithmetic: at
// τ = 1 s the 50 Kbps bottleneck holds 12.5 of the 500-byte packets.
func ExampleConfig_PipeSize() {
	cfg := tahoedyn.Dumbbell(time.Second, 20)
	fmt.Printf("P = %.1f packets, data tx = %v\n", cfg.PipeSize(), cfg.DataTxTime())
	// Output:
	// P = 12.5 packets, data tx = 80ms
}
